"""Tests for the machine-statistics report."""

from tests.conftest import ready_channel

from repro.core.report import machine_stats, stats_table


def run_some_dmas():
    ws, proc, src, dst, chan = ready_channel("keyed")
    for index in range(3):
        chan.dma(src.vaddr + index * 64, dst.vaddr + index * 64, 64)
    return ws


def test_snapshot_counts_activity():
    ws = run_some_dmas()
    stats = machine_stats(ws)
    assert stats["dma.initiations"] == 3
    assert stats["dma.started"] == 3
    assert stats["dma.rejected"] == 0
    assert stats["dma.bytes_moved"] == 192
    assert stats["cpu0.instructions"] > 10
    assert stats["wb.stores_posted"] >= 9  # 3 stores per initiation


def test_tlb_counters_present():
    ws = run_some_dmas()
    stats = machine_stats(ws)
    assert stats["tlb.hits"] > 0
    assert 0 <= stats["tlb.hit_rate"] <= 1


def test_rejections_counted():
    ws, proc, src, dst, chan = ready_channel("keyed")
    chan.initiate(src.vaddr, dst.vaddr, 1 << 30)  # too big -> rejected
    stats = machine_stats(ws)
    assert stats["dma.rejected"] == 1


def test_atomic_counters_only_with_unit():
    ws = run_some_dmas()
    assert "atomic.operations" not in machine_stats(ws)
    ws2, *_ = ready_channel("keyed", atomic_mode="keyed")
    assert "atomic.operations" in machine_stats(ws2)


def test_table_rendering():
    ws = run_some_dmas()
    text = stats_table(ws).render()
    assert "dma.initiations" in text
    assert "Machine statistics" in text


def test_nonzero_filter():
    ws, *_ = ready_channel("keyed")
    full = stats_table(ws, nonzero_only=False).render()
    filtered = stats_table(ws, nonzero_only=True).render()
    assert len(full) > len(filtered)
