"""Integration tests: every initiation method end-to-end on the machine.

For each method: the user-level (or syscall) sequence is built, run on the
simulated CPU through the MMU/write buffer/bus, accepted by the engine's
FSM, and the data mover actually moves the bytes.
"""

import pytest

from tests.conftest import ready_channel

from repro.core.methods import METHODS, PAPER_METHODS
from repro.errors import ConfigError
from repro.hw.isa import (
    CompareExchange,
    Load,
    Mb,
    Store,
    Syscall,
    count_memory_accesses,
)

ALL_METHODS = [m for m in METHODS if m != "kernel"] + ["kernel"]
PAYLOAD = bytes(range(256)) * 2


@pytest.mark.parametrize("method", ALL_METHODS)
def test_end_to_end_data_movement(method):
    ws, proc, src, dst, chan = ready_channel(method)
    ws.ram.write(src.paddr, PAYLOAD)
    result = chan.dma(src.vaddr, dst.vaddr, len(PAYLOAD))
    assert result.ok, method
    assert ws.ram.read(dst.paddr, len(PAYLOAD)) == PAYLOAD


@pytest.mark.parametrize("method", ALL_METHODS)
def test_initiation_status_and_latency(method):
    ws, proc, src, dst, chan = ready_channel(method)
    chan.initiate(src.vaddr, dst.vaddr, 64)  # warm TLB
    result = chan.initiate(src.vaddr + 64, dst.vaddr + 64, 64)
    assert result.ok
    assert result.elapsed > 0
    if method != "kernel":
        # User-level methods are an order of magnitude under 18.6 us.
        assert result.elapsed_us < 5.0


@pytest.mark.parametrize("method", PAPER_METHODS)
def test_paper_methods_within_2_to_5_accesses(method):
    ws, proc, src, dst, chan = ready_channel(method)
    program = chan.program(src.vaddr, dst.vaddr, 64, with_retry=False)
    accesses = count_memory_accesses(program)
    if method == "pal":
        # The accesses live inside the installed PAL function.
        accesses = count_memory_accesses(
            ws.cpu.pal_function("user_level_dma"))
    assert 2 <= accesses <= 5


def test_offsets_within_buffers_work():
    ws, proc, src, dst, chan = ready_channel("keyed")
    ws.ram.write(src.paddr + 512, b"offset!")
    result = chan.dma(src.vaddr + 512, dst.vaddr + 1024, 7)
    assert result.ok
    assert ws.ram.read(dst.paddr + 1024, 7) == b"offset!"


def test_multi_page_transfer():
    from repro.hw.pagetable import PAGE_SIZE

    ws, proc, src, dst, chan = ready_channel("extshadow",
                                             buf_bytes=4 * PAGE_SIZE)
    payload = bytes((i * 7) % 256 for i in range(2 * PAGE_SIZE))
    ws.ram.write(src.paddr, payload)
    result = chan.dma(src.vaddr, dst.vaddr, len(payload))
    assert result.ok
    assert ws.ram.read(dst.paddr, len(payload)) == payload


def test_back_to_back_transfers():
    ws, proc, src, dst, chan = ready_channel("repeated5")
    for index in range(5):
        ws.ram.write(src.paddr + index * 64, bytes([index]) * 64)
        result = chan.dma(src.vaddr + index * 64, dst.vaddr + index * 64,
                          64)
        assert result.ok
    for index in range(5):
        assert ws.ram.read(dst.paddr + index * 64, 64) == (
            bytes([index]) * 64)


def test_kernel_method_sequence_is_a_syscall():
    ws, proc, src, dst, chan = ready_channel("kernel")
    seq = chan.sequence(src.vaddr, dst.vaddr, 64)
    assert isinstance(seq[-1], Syscall)


def test_shrimp1_sequence_is_one_exchange():
    ws, proc, src, dst, chan = ready_channel("shrimp1")
    seq = chan.sequence(src.vaddr, dst.vaddr, 64)
    assert len(seq) == 1
    assert isinstance(seq[0], CompareExchange)


def test_extshadow_sequence_is_store_load():
    ws, proc, src, dst, chan = ready_channel("extshadow")
    seq = chan.sequence(src.vaddr, dst.vaddr, 64)
    assert [type(i) for i in seq] == [Store, Load]


def test_repeated5_sequence_shape_with_mb():
    ws, proc, src, dst, chan = ready_channel("repeated5")
    seq = chan.sequence(src.vaddr, dst.vaddr, 64, with_retry=False,
                        with_mb=True)
    kinds = [type(i) for i in seq]
    assert kinds == [Store, Mb, Load, Store, Mb, Load, Load]


def test_repeated5_sequence_without_mb():
    ws, proc, src, dst, chan = ready_channel("repeated5")
    seq = chan.sequence(src.vaddr, dst.vaddr, 64, with_retry=False,
                        with_mb=False)
    assert [type(i) for i in seq] == [Store, Load, Store, Load, Load]


def test_channel_rejects_method_mismatch():
    from repro.core.api import DmaChannel
    from tests.conftest import build_workstation

    ws_keyed = build_workstation("keyed")
    ws_ext = build_workstation("extshadow")
    proc = ws_ext.kernel.spawn()
    ws_ext.kernel.enable_user_dma(proc)
    with pytest.raises(ConfigError):
        DmaChannel(ws_keyed, proc)


def test_initiate_unmapped_address_faults_to_failure():
    ws, proc, src, dst, chan = ready_channel("extshadow")
    result = chan.initiate(0xBAD0000, dst.vaddr, 64)
    assert not result.ok


def test_dma_too_large_for_destination_fails():
    ws, proc, src, dst, chan = ready_channel("extshadow",
                                             buf_bytes=8192)
    result = chan.initiate(src.vaddr, dst.vaddr, 1 << 26)
    assert not result.ok


def test_pal_method_initiation_is_uninterruptible_by_construction():
    """PAL wraps the pair in one CALL_PAL — a single scheduler step."""
    ws, proc, src, dst, chan = ready_channel("pal")
    program = chan.program(src.vaddr, dst.vaddr, 64)
    thread = proc.new_thread(program)
    ws.cpu.mmu.activate(thread.page_table, flush=False)
    steps = 0

    while not thread.done and steps < 100:
        ws.cpu.step(thread)
        steps += 1
    # 3 Movs + 1 CallPal + Halt = 5 steps, never more.
    assert steps == 5
    assert ws.engine.started_transfers()


def test_status_word_polls_remaining_bytes():
    """§3.1: context reads report bytes not yet transferred."""
    ws, proc, src, dst, chan = ready_channel("keyed")
    result = chan.initiate(src.vaddr, dst.vaddr, 4096)
    assert result.ok
    assert result.status == 4096  # remaining right after start
    ws.drain()
