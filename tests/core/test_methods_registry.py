"""Unit tests for the method registry and timing presets."""

import pytest

from repro.core.methods import (
    BASELINE_METHODS,
    METHODS,
    MODERN_METHODS,
    PAPER_METHODS,
    TABLE1_METHODS,
    get_method,
    make_protocol,
)
from repro.core.timing import (
    ALPHA3000_TURBOCHANNEL,
    ALPHA_PCI_33,
    ALPHA_PCI_66,
    TIMING_PRESETS,
)
from repro.errors import ConfigError


def test_all_ten_methods_registered():
    """The paper's ten methods plus the four modern entries."""
    assert len(METHODS) == 14
    for name in ("kernel", "shrimp1", "shrimp2", "flash", "pal", "keyed",
                 "extshadow", "repeated3", "repeated4", "repeated5",
                 "iommu", "iommu_noshootdown", "capio", "capio_noepoch"):
        assert name in METHODS


def test_modern_methods_registered_and_kernel_free():
    assert MODERN_METHODS == ["iommu", "capio"]
    for name in MODERN_METHODS:
        assert METHODS[name].kernel_free, name
        assert METHODS[name].uses_context, name
        # Their weakened counterparts ride along for the synthesis hunt.
        weakened = {"iommu": "iommu_noshootdown",
                    "capio": "capio_noepoch"}[name]
        assert weakened in METHODS


def test_unknown_method_raises():
    with pytest.raises(ConfigError):
        get_method("dpdk")


def test_protocol_factories_build_fresh_instances():
    a = make_protocol("keyed")
    b = make_protocol("keyed")
    assert a is not b
    assert a.name == "keyed"


def test_protocol_names_match_registry_keys():
    for name in METHODS:
        if name == "kernel":
            continue
        assert make_protocol(name).name == name


def test_kernel_free_property():
    """The paper's headline: its methods need no kernel modification."""
    for name in PAPER_METHODS:
        assert METHODS[name].kernel_free, name
    assert not METHODS["shrimp2"].kernel_free
    assert not METHODS["flash"].kernel_free
    assert not METHODS["kernel"].kernel_free


def test_baselines_declare_their_hook():
    assert METHODS["shrimp2"].kernel_hook == "shrimp_abort"
    assert METHODS["flash"].kernel_hook == "flash_pid"
    for name in PAPER_METHODS:
        assert METHODS[name].kernel_hook is None


def test_memory_access_counts_match_paper():
    """'a DMA operation can be initiated in 2 to 5 assembly instructions'."""
    assert METHODS["extshadow"].memory_accesses == 2
    assert METHODS["pal"].memory_accesses == 2
    assert METHODS["keyed"].memory_accesses == 4
    assert METHODS["repeated5"].memory_accesses == 5
    for name in PAPER_METHODS:
        assert 2 <= METHODS[name].memory_accesses <= 5


def test_table1_rows_in_paper_order():
    assert TABLE1_METHODS == ["kernel", "extshadow", "repeated5", "keyed"]


def test_method_groups_disjoint():
    assert not set(PAPER_METHODS) & set(BASELINE_METHODS)


def test_only_pal_uses_pal_mode():
    assert METHODS["pal"].uses_pal
    assert not any(METHODS[m].uses_pal for m in METHODS if m != "pal")


def test_context_consumers():
    assert METHODS["keyed"].uses_context
    assert METHODS["extshadow"].uses_context
    assert not METHODS["repeated5"].uses_context


def test_timing_presets():
    assert ALPHA3000_TURBOCHANNEL.cpu_hz == 150e6
    assert ALPHA3000_TURBOCHANNEL.bus.frequency_hz == 12.5e6
    assert ALPHA_PCI_33.bus.frequency_hz == 33e6
    assert ALPHA_PCI_66.bus.frequency_hz == 66e6
    assert ALPHA3000_TURBOCHANNEL.name in TIMING_PRESETS


def test_syscall_cost_in_papers_cited_range():
    """§2.2 cites 1,000-5,000 cycles for an empty syscall."""
    costs = ALPHA3000_TURBOCHANNEL.cpu_costs
    total = costs.syscall_entry_cycles + costs.syscall_exit_cycles
    assert 1_000 <= total <= 5_000
