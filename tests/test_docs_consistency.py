"""Documentation consistency: the docs only reference real artifacts.

DESIGN.md's experiment index and EXPERIMENTS.md cite module paths,
benchmark files, and test files; these tests keep those citations honest
as the code evolves.
"""

import pathlib
import re

ROOT = pathlib.Path(__file__).resolve().parents[1]


def referenced_paths(text):
    """Extract repo-relative .py paths mentioned in a document."""
    pattern = re.compile(
        r"(?:benchmarks|tests|examples|src/repro|repro)[\w/\.]*\.py")
    return set(re.findall(pattern, text))


def normalize(path: str) -> pathlib.Path:
    if path.startswith("repro/"):
        path = "src/" + path
    return ROOT / path


def test_design_references_exist():
    text = (ROOT / "DESIGN.md").read_text()
    for ref in referenced_paths(text):
        assert normalize(ref).exists(), f"DESIGN.md cites missing {ref}"


def test_experiments_references_exist():
    text = (ROOT / "EXPERIMENTS.md").read_text()
    for ref in referenced_paths(text):
        assert normalize(ref).exists(), (
            f"EXPERIMENTS.md cites missing {ref}")


def test_readme_references_exist():
    text = (ROOT / "README.md").read_text()
    for ref in referenced_paths(text):
        assert normalize(ref).exists(), f"README.md cites missing {ref}"


def test_docs_references_exist():
    for doc in (ROOT / "docs").glob("*.md"):
        for ref in referenced_paths(doc.read_text()):
            assert normalize(ref).exists(), (
                f"{doc.name} cites missing {ref}")


def test_every_benchmark_is_documented():
    """Each bench file appears in DESIGN.md or EXPERIMENTS.md."""
    documented = (referenced_paths((ROOT / "DESIGN.md").read_text())
                  | referenced_paths((ROOT / "EXPERIMENTS.md").read_text()))
    documented_names = {pathlib.Path(p).name for p in documented}
    for bench in (ROOT / "benchmarks").glob("bench_*.py"):
        assert bench.name in documented_names, (
            f"{bench.name} is not mentioned in DESIGN.md/EXPERIMENTS.md")


def test_every_example_is_in_readme():
    readme = (ROOT / "README.md").read_text()
    for example in (ROOT / "examples").glob("*.py"):
        assert example.name in readme, (
            f"examples/{example.name} missing from README.md")
