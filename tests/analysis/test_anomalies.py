"""EWMA smoothing and robust-z anomaly detection over trend history."""

import pytest

from repro.analysis.trends import (
    ServiceTrendPoint,
    detect_anomalies,
    ewma,
    robust_z,
    service_trend_report,
    trend_anomaly_report,
)


def test_ewma_smooths_and_validates():
    values = [10.0, 10.0, 10.0, 20.0]
    smoothed = ewma(values, alpha=0.3)
    assert smoothed[0] == 10.0
    assert smoothed[-1] == pytest.approx(13.0)
    assert ewma([]) == []
    with pytest.raises(ValueError):
        ewma(values, alpha=0.0)
    with pytest.raises(ValueError):
        ewma(values, alpha=1.5)


def test_robust_z_handles_outliers_and_constants():
    values = [10.0] * 20 + [1000.0]
    scores = robust_z(values)
    assert scores[-1] > 10.0
    assert all(abs(s) < 1.0 for s in scores[:-1])
    # A constant series produces no scores, not a division blowup.
    assert robust_z([5.0, 5.0, 5.0]) == [0.0, 0.0, 0.0]
    assert robust_z([]) == []


def test_detect_anomalies_flags_spikes_not_noise():
    steady = [100.0, 101.0, 99.0, 100.0, 102.0, 98.0, 100.0, 101.0]
    assert detect_anomalies(steady) == []
    spiked = steady + [500.0] + steady
    hits = detect_anomalies(spiked)
    # The spike flags first; only its EWMA recovery tail may follow.
    assert hits and min(hits) == len(steady)
    assert all(h >= len(steady) for h in hits)
    # Too little history: never anomalous.
    assert detect_anomalies([1.0, 100.0]) == []


def test_min_residual_floor_ignores_sparse_count_noise():
    # A healthy faulted soak fails 0-2 requests per window; the robust
    # scale of such a series is ~0, so without the floor a single
    # failure would page.
    # The shape of a real 60-window baseline: a leading 2, long zero
    # stretches, scattered 1s.
    sparse = [2.0] + [1.0 if i % 7 == 0 else 0.0 for i in range(59)]
    assert detect_anomalies(sparse) != []  # the degenerate mode exists
    assert detect_anomalies(sparse, min_residual=3.0) == []
    # A genuine burst clears any reasonable floor.
    burst = sparse + [50.0]
    hits = detect_anomalies(burst, min_residual=3.0)
    assert len(burst) - 1 in hits


def test_failed_series_floor_in_trend_report():
    points = [ServiceTrendPoint(t_s=float(i), completed=100,
                                failed=(1 if i % 4 == 0 else 0),
                                goodput_mbytes_per_s=100.0, p99_us=50.0)
              for i in range(12)]
    report = trend_anomaly_report(service_trend_report(points))
    assert not report["anomalous"]
    points.append(ServiceTrendPoint(t_s=12.0, completed=60, failed=40,
                                    goodput_mbytes_per_s=100.0,
                                    p99_us=50.0))
    report = trend_anomaly_report(service_trend_report(points))
    assert report["anomalies"]["failed"] == [12.0]


def test_trend_anomaly_report_over_service_windows():
    points = [ServiceTrendPoint(t_s=float(i), completed=100,
                                goodput_mbytes_per_s=100.0 + (i % 3),
                                p99_us=50.0)
              for i in range(12)]
    points.append(ServiceTrendPoint(t_s=12.0, completed=100,
                                    goodput_mbytes_per_s=101.0,
                                    p99_us=5000.0))
    report = service_trend_report(points)
    result = trend_anomaly_report(report)
    assert result["kind"] == "trend_anomalies"
    assert result["windows"] == 13
    assert result["anomalous"]
    assert result["anomalies"]["p99_us"] == [12.0]
    assert result["anomalies"].get("goodput_mbytes_per_s", []) == []

    clean = trend_anomaly_report(service_trend_report(points[:-1]))
    assert not clean["anomalous"]


def test_exemplars_survive_the_trend_report_roundtrip():
    point = ServiceTrendPoint(t_s=1.0, completed=3, p99_us=80.0,
                              p99_exemplars=("7-00000001", "7-00000002"))
    out = point.to_dict()
    assert out["p99_exemplars"] == ["7-00000001", "7-00000002"]
    # Quiet windows stay compact: no empty exemplar arrays.
    assert "p99_exemplars" not in ServiceTrendPoint(t_s=2.0).to_dict()
