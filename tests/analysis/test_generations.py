"""Tests for the historical-generations trend model."""

import pytest

from repro.analysis.generations import (
    Generation,
    HISTORICAL_GENERATIONS,
    domination_year,
    generation_series,
)


def test_generations_are_chronological():
    years = [g.year for g in HISTORICAL_GENERATIONS]
    assert years == sorted(years)


def test_networks_outpace_buses():
    first, last = HISTORICAL_GENERATIONS[0], HISTORICAL_GENERATIONS[-1]
    network_growth = last.network_mbps / first.network_mbps
    bus_growth = last.bus_mhz / first.bus_mhz
    assert network_growth > 10 * bus_growth / 10  # 100x vs ~8x
    assert network_growth == pytest.approx(100.0)


def test_os_cycles_grow_with_generations():
    cycles = [g.os_cycles for g in HISTORICAL_GENERATIONS]
    assert cycles == sorted(cycles)


def test_kernel_ratio_rises_across_the_decade():
    series = generation_series(1024)
    assert series[-1].kernel_ratio > 5 * series[0].kernel_ratio


def test_user_ratio_stays_negligible():
    for point in generation_series(1024):
        assert point.user_ratio < 0.05


def test_kernel_dominates_small_messages_by_1995():
    assert domination_year(256) <= 1995


def test_kernel_dominates_1kb_by_decade_end():
    year = domination_year(1024)
    assert year != -1
    assert year <= 1999


def test_huge_messages_never_dominated():
    assert domination_year(10 * 1024 * 1024) == -1


def test_1995_generation_matches_the_papers_machine():
    gen = next(g for g in HISTORICAL_GENERATIONS if g.year == 1995)
    assert gen.cpu_mhz == 150.0       # Alpha 3000/300
    assert gen.bus_mhz == 12.5        # TurboChannel
    # ~18 us kernel initiation, matching Table 1's order.
    from repro.units import to_us

    assert 15 < to_us(gen.kernel_initiation) < 21


def test_custom_trajectory():
    flat = [Generation(year=2000, cpu_mhz=100, bus_mhz=33,
                       network_mbps=10_000, os_cycles=2_000)]
    assert domination_year(64, flat) == 2000


def test_wire_time_scales_inversely_with_bandwidth():
    slow = Generation(year=0, cpu_mhz=100, bus_mhz=33,
                      network_mbps=100)
    fast = Generation(year=1, cpu_mhz=100, bus_mhz=33,
                      network_mbps=1000)
    assert slow.wire_time(1024) == pytest.approx(
        10 * fast.wire_time(1024), rel=0.01)
