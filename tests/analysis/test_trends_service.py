"""Service-trend primitives in analysis.trends."""

import pytest

from repro.analysis.trends import (
    ServiceTrendPoint,
    TrendHistory,
    compare_service_reports,
    jain_index,
    latency_summary,
    percentile,
    service_trend_report,
)


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 99.0) == 0.0

    def test_single_value(self):
        assert percentile([5.0], 50.0) == 5.0

    def test_interpolates(self):
        values = [10.0, 20.0, 30.0, 40.0]
        assert percentile(values, 0.0) == 10.0
        assert percentile(values, 100.0) == 40.0
        assert percentile(values, 50.0) == pytest.approx(25.0)

    def test_order_independent(self):
        assert percentile([3.0, 1.0, 2.0], 50.0) == 2.0


class TestLatencySummary:
    def test_empty(self):
        summary = latency_summary([])
        assert summary["n"] == 0
        assert summary["p99"] == 0.0

    def test_fields(self):
        summary = latency_summary([1.0, 2.0, 3.0, 100.0])
        assert summary["n"] == 4
        assert summary["max"] == 100.0
        assert summary["mean"] == pytest.approx(26.5)
        assert summary["p50"] < summary["p95"] <= summary["p99"]


class TestJainIndex:
    def test_perfectly_fair(self):
        assert jain_index([5, 5, 5, 5]) == pytest.approx(1.0)

    def test_single_hog(self):
        assert jain_index([10, 0, 0, 0]) == pytest.approx(0.25)

    def test_empty_and_zero_are_fair(self):
        assert jain_index([]) == 1.0
        assert jain_index([0, 0]) == 1.0


def make_point(t_s, goodput=10.0, **overrides):
    defaults = dict(t_s=t_s, completed=10, failed=0, rejected=0,
                    bytes_moved=10_000,
                    goodput_mbytes_per_s=goodput, p50_us=10.0,
                    p95_us=20.0, p99_us=30.0, retries=1, faults=0,
                    fairness=1.0, queue_depth=0.5)
    defaults.update(overrides)
    return ServiceTrendPoint(**defaults)


class TestTrendHistory:
    def test_bounded_retention(self):
        history = TrendHistory(max_points=3)
        for i in range(5):
            history.append(make_point(float(i)))
        assert len(history.points) == 3
        assert history.points[0].t_s == 2.0

    def test_point_serializes(self):
        data = make_point(1.0).to_dict()
        assert data["t_s"] == 1.0
        assert data["goodput_mbytes_per_s"] == 10.0


class TestServiceTrendReport:
    def test_empty_report(self):
        report = service_trend_report([])
        assert report["kind"] == "service_trend"
        assert report["summary"]["windows"] == 0
        assert report["stalls"] == []

    def test_summary_aggregates(self):
        points = [make_point(float(i)) for i in range(4)]
        report = service_trend_report(points, meta={"seed": 7})
        summary = report["summary"]
        assert summary["windows"] == 4
        assert summary["completed"] == 40
        assert summary["median_goodput_mbytes_per_s"] == 10.0
        assert report["meta"] == {"seed": 7}
        assert len(report["windows_series"]) == 4

    def test_stall_detection(self):
        points = [make_point(float(i)) for i in range(4)]
        points.append(make_point(4.0, goodput=1.0))
        report = service_trend_report(points)
        assert report["stalls"] == [4.0]


def service_report(goodput=100.0, p99=50.0, wrong=0, verdict="RECOVERED"):
    return {
        "benchmark": "service_soak",
        "goodput_mbytes_per_s": goodput,
        "latency_us": {"p99": p99},
        "requests": {"wrong_transfers": wrong},
        "faults": {"verdict": verdict},
    }


class TestCompareServiceReports:
    def test_identical_reports_pass(self):
        report = service_report()
        assert compare_service_reports(report, report) == []

    def test_small_drift_passes(self):
        assert compare_service_reports(
            service_report(), service_report(goodput=95.0, p99=54.0)) == []

    def test_goodput_regression_fails(self):
        failures = compare_service_reports(
            service_report(), service_report(goodput=85.0))
        assert any("goodput" in f for f in failures)

    def test_p99_regression_fails(self):
        failures = compare_service_reports(
            service_report(), service_report(p99=60.0))
        assert any("p99" in f for f in failures)

    def test_wrong_transfers_always_fatal(self):
        failures = compare_service_reports(
            service_report(), service_report(wrong=1))
        assert any("wrong-page" in f for f in failures)

    def test_unsafe_verdict_fatal(self):
        failures = compare_service_reports(
            service_report(), service_report(verdict="UNSAFE"))
        assert any("UNSAFE" in f for f in failures)

    def test_thresholds_are_tunable(self):
        assert compare_service_reports(
            service_report(), service_report(goodput=85.0),
            max_goodput_drop=0.20) == []
