"""Unit tests for the trend analysis and table rendering."""

import pytest

from repro.analysis.report import Table, format_us
from repro.analysis.trends import (
    crossover_size,
    crossover_table,
    measure_initiation_us,
    overhead_sweep,
)
from repro.net.link import ATM_155, ATM_622, GIGABIT, LinkSpec
from repro.units import mbps, us


class TestCrossover:
    def test_crossover_grows_with_bandwidth(self):
        init = 18.6
        assert (crossover_size(init, GIGABIT)
                > crossover_size(init, ATM_622)
                > crossover_size(init, ATM_155))

    def test_fast_initiation_never_dominates_on_slow_link(self):
        # 1.1 us initiation < 10 us link latency: crossover at 0.
        assert crossover_size(1.1, ATM_155) == 0

    def test_kernel_initiation_dominates_small_messages(self):
        # 18.6 us on ATM-155: everything under ~150 B is
        # initiation-dominated — the paper's motivating regime.
        size = crossover_size(18.6, ATM_155)
        assert 100 < size < 250

    def test_exact_arithmetic(self):
        link = LinkSpec("t", mbps(100), latency=0,
                        per_message_overhead=0)
        # 10 us at 100 Mb/s = 1000 bits = 125 bytes.
        assert crossover_size(10.0, link) == 125

    def test_crossover_table_covers_grid(self):
        init = {"kernel": 18.6, "extshadow": 1.1}
        rows = crossover_table(["kernel", "extshadow"],
                               [ATM_155, GIGABIT], initiation_us=init)
        assert len(rows) == 4
        kernel_giga = next(r for r in rows if r.method == "kernel"
                           and r.link == "gigabit")
        assert kernel_giga.crossover_bytes > 1000


class TestOverheadSweep:
    def test_fraction_falls_with_size(self):
        points = overhead_sweep(
            ["kernel"], [ATM_155], [64, 1024, 65536],
            initiation_us={"kernel": 18.6})
        fractions = [p.overhead_fraction for p in points]
        assert fractions[0] > fractions[1] > fractions[2]

    def test_fraction_rises_with_bandwidth(self):
        points = overhead_sweep(
            ["kernel"], [ATM_155, GIGABIT], [4096],
            initiation_us={"kernel": 18.6})
        by_link = {p.link: p.overhead_fraction for p in points}
        assert by_link["gigabit"] > by_link["atm-155"]

    def test_user_level_overhead_negligible(self):
        points = overhead_sweep(
            ["extshadow"], [GIGABIT], [64],
            initiation_us={"extshadow": 1.1})
        assert points[0].overhead_fraction < 0.3

    def test_measures_when_not_given(self):
        points = overhead_sweep(["extshadow"], [ATM_155], [64])
        assert points[0].initiation_us == pytest.approx(1.1, abs=0.2)


def test_measure_initiation_close_to_table1():
    assert measure_initiation_us("keyed",
                                 iterations=5) == pytest.approx(2.3,
                                                                rel=0.1)


class TestTable:
    def test_render_contains_everything(self):
        table = Table("Table 1", ["method", "us"])
        table.add_row("kernel", format_us(18.6))
        table.add_row("extshadow", format_us(1.1))
        text = table.render()
        assert "Table 1" in text
        assert "kernel" in text and "18.6" in text
        assert "extshadow" in text and "1.1" in text

    def test_row_width_validation(self):
        table = Table("t", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row("only-one")

    def test_markdown_form(self):
        table = Table("T", ["a", "b"])
        table.add_row(1, 2)
        md = table.markdown()
        assert "| a | b |" in md
        assert "| 1 | 2 |" in md


def test_format_us_matches_paper_style():
    assert format_us(18.6) == "18.6"
    assert format_us(1.1) == "1.1"
    assert format_us(2.345, digits=2) == "2.35"
