"""Property-based fault-tolerance tests (hypothesis).

The ISSUE-level property, at two levels:

* **Checker level** — any single fault applied to a fault-hardened
  method's access streams leaves the protection properties intact over
  *every* interleaving (no fault can mint an unauthorized DMA start).
* **Timed level** — under any single runtime fault, a hardened
  ``dma_reliable`` either completes correctly (possibly after retry /
  kernel fallback) or reports failure having moved nothing; it never
  lands bytes on a page the operation did not name.

Both tests are derandomized so CI is deterministic.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.api import DmaChannel
from repro.core.machine import MachineConfig, Workstation
from repro.faults.injector import Injector
from repro.faults.plan import (
    BITFLIP,
    DELAY,
    DROP,
    DUPLICATE,
    FaultPlan,
    FaultRule,
)
from repro.faults.retry import RetryPolicy
from repro.units import us
from repro.verify.adversary import pair_race_scenario
from repro.verify.faulted import (
    FAULT_HARDENED_METHODS,
    apply_fault,
    enumerate_single_faults,
)
from repro.verify.incremental import check_scenario_incremental

SETTINGS = settings(max_examples=25, deadline=None, derandomize=True,
                    suppress_health_check=[HealthCheck.too_slow])

TRANSFER_BYTES = 2048

#: Runtime fault menu the timed-level property draws from.
RUNTIME_FAULTS = [
    (kind, target)
    for target in ("store", "load", "completion")
    for kind in (DROP, DELAY, DUPLICATE, BITFLIP)
]

POLICY = RetryPolicy(max_attempts=4, base_backoff=us(2),
                     completion_timeout=us(500))


# ----------------------------------------------------------------------
# checker level
# ----------------------------------------------------------------------

def _race(method):
    scenario = pair_race_scenario(method)
    scenario.page_bounded = True
    scenario.check_truthfulness = False
    return scenario


_SPECS = {method: enumerate_single_faults(_race(method))
          for method in FAULT_HARDENED_METHODS}


@SETTINGS
@given(data=st.data())
def test_no_single_fault_mints_an_attack(data):
    method = data.draw(st.sampled_from(FAULT_HARDENED_METHODS))
    spec = data.draw(st.sampled_from(_SPECS[method]))
    variant = apply_fault(_race(method), spec)
    result = check_scenario_incremental(variant)
    assert not result.attack_found, (
        f"{method} newly unsafe under {spec.label()}: {result.summary()}")


# ----------------------------------------------------------------------
# timed level
# ----------------------------------------------------------------------

@SETTINGS
@given(method=st.sampled_from(("keyed", "repeated5")),
       fault=st.sampled_from(RUNTIME_FAULTS),
       nth=st.integers(min_value=1, max_value=6),
       bit=st.integers(min_value=0, max_value=63))
def test_single_runtime_fault_never_wrong_pages(method, fault, nth, bit):
    kind, target = fault
    ws = Workstation(MachineConfig(method=method, page_bounded=True,
                                   seed=3))
    proc = ws.kernel.spawn("t")
    ws.kernel.enable_user_dma(proc)
    src = ws.kernel.alloc_buffer(proc, 8192)
    dst = ws.kernel.alloc_buffer(proc, 8192)
    victim = ws.kernel.alloc_buffer(proc, 8192)
    payload = bytes(range(256)) * (TRANSFER_BYTES // 256)
    sentinel = b"\xa5" * 8192
    ws.ram.write(src.paddr, payload)
    ws.ram.write(dst.paddr, b"\0" * TRANSFER_BYTES)
    ws.ram.write(victim.paddr, sentinel)

    rule = FaultRule(kind=kind, target=target, nth=nth, count=1,
                     bit=bit if kind == BITFLIP else None)
    injector = Injector(FaultPlan(rules=[rule], seed=1), ws.sim,
                        trace=ws.trace).attach(ws)
    chan = DmaChannel(ws, proc)
    result = chan.dma_reliable(src.vaddr, dst.vaddr, TRANSFER_BYTES,
                               policy=POLICY)
    ws.sim.advance(us(2_000))  # let delayed/duplicate events settle
    injector.detach()

    landed = ws.ram.read(dst.paddr, TRANSFER_BYTES)
    # Either the operation completed correctly (after however many
    # retries), or it aborted having transferred nothing.
    if result.ok:
        assert landed == payload
    else:
        assert landed == b"\0" * TRANSFER_BYTES
    # Never wrong-pages: a page the operation did not name stays intact.
    assert ws.ram.read(victim.paddr, 8192) == sentinel
    assert ws.ram.read(src.paddr, TRANSFER_BYTES) == payload
