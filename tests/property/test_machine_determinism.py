"""Property: the whole machine is deterministic given its seed.

Reproducibility is load-bearing for every experiment in this repo, so it
gets its own tests: identical configs and seeds produce byte-identical
statistics, traces, and audit reports; different seeds genuinely vary
the stochastic parts and nothing else.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.api import DmaChannel
from repro.core.machine import MachineConfig, Workstation
from repro.core.report import machine_stats
from repro.verify.stress import run_stress


def run_workload(seed: int, method: str = "keyed"):
    ws = Workstation(MachineConfig(method=method, seed=seed,
                                   trace_enabled=True))
    proc = ws.kernel.spawn()
    ws.kernel.enable_user_dma(proc)
    src = ws.kernel.alloc_buffer(proc, 16384)
    dst = ws.kernel.alloc_buffer(proc, 16384)
    chan = DmaChannel(ws, proc)
    for index in range(5):
        chan.dma(src.vaddr + index * 64, dst.vaddr + index * 64, 64)
    return ws


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_same_seed_same_stats(seed):
    a = run_workload(seed)
    b = run_workload(seed)
    assert machine_stats(a) == machine_stats(b)
    assert a.now == b.now


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_same_seed_same_trace(seed):
    a = run_workload(seed)
    b = run_workload(seed)
    assert a.trace.dump() == b.trace.dump()


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(min_value=0, max_value=1_000))
def test_stress_reports_reproducible(seed):
    first = run_stress("shrimp2", n_processes=3, dmas_each=8,
                       preempt_p=0.4, with_hooks=False, seed=seed)
    second = run_stress("shrimp2", n_processes=3, dmas_each=8,
                        preempt_p=0.4, with_hooks=False, seed=seed)
    assert vars(first) == vars(second)


def test_different_seeds_change_keys_not_results():
    a = run_workload(1)
    b = run_workload(2)
    # The behaviour (counters) is identical — keys differ but both runs
    # complete the same workload — while the secrets themselves differ.
    stats_a, stats_b = machine_stats(a), machine_stats(b)
    assert stats_a == stats_b
    key_a = a.kernel.processes[1].dma.key
    key_b = b.kernel.processes[1].dma.key
    assert key_a != key_b
