"""Property-based tests on simulation-substrate invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.memory import PhysicalMemory
from repro.hw.pagetable import PAGE_SIZE
from repro.hw.writebuffer import WriteBuffer
from repro.sim.engine import Simulator
from repro.units import kib
from repro.verify.interleave import interleaving_count


@settings(max_examples=100, deadline=None)
@given(delays=st.lists(st.integers(min_value=0, max_value=10_000),
                       min_size=1, max_size=30))
def test_simulator_fires_in_timestamp_order(delays):
    sim = Simulator()
    fired = []
    for delay in delays:
        sim.schedule(delay, lambda d=delay: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)
    assert sim.now == max(delays)


@settings(max_examples=100, deadline=None)
@given(steps=st.lists(st.integers(min_value=0, max_value=1000),
                      min_size=1, max_size=50))
def test_advance_is_additive(steps):
    sim = Simulator()
    for step in steps:
        sim.advance(step)
    assert sim.now == sum(steps)


@settings(max_examples=100, deadline=None)
@given(writes=st.lists(
    st.tuples(st.integers(min_value=0, max_value=kib(8) - 8),
              st.binary(min_size=1, max_size=8)),
    min_size=1, max_size=40))
def test_memory_last_writer_wins(writes):
    ram = PhysicalMemory(kib(8))
    shadow = bytearray(kib(8))
    for paddr, data in writes:
        ram.write(paddr, data)
        shadow[paddr:paddr + len(data)] = data
    assert ram.read(0, kib(8)) == bytes(shadow)


@settings(max_examples=100, deadline=None)
@given(stores=st.lists(
    st.tuples(st.sampled_from([0x100, 0x108, 0x110]),
              st.integers(min_value=0, max_value=255)),
    min_size=1, max_size=20))
def test_write_buffer_drains_every_address_once_when_collapsing(stores):
    wb = WriteBuffer(capacity=16, collapsing=True)
    drained = []

    def drain(paddr, value):
        drained.append((paddr, value))
        return 1

    for paddr, value in stores:
        wb.post(paddr, value, drain)
    wb.flush(drain)
    # Each address appears at most once, with its last value.
    seen = {}
    for paddr, value in drained:
        assert paddr not in seen
        seen[paddr] = value
    last = {}
    for paddr, value in stores:
        last[paddr] = value
    assert seen == last


@settings(max_examples=100, deadline=None)
@given(stores=st.lists(
    st.tuples(st.integers(min_value=0, max_value=5),
              st.integers(min_value=0, max_value=255)),
    min_size=1, max_size=20))
def test_write_buffer_preserves_order_without_collapsing(stores):
    wb = WriteBuffer(capacity=4, collapsing=False)
    drained = []

    def drain(paddr, value):
        drained.append((paddr, value))
        return 1

    for paddr, value in stores:
        wb.post(paddr * 8, value, drain)
    wb.flush(drain)
    assert drained == [(p * 8, v) for p, v in stores]


@settings(max_examples=60, deadline=None)
@given(lengths=st.lists(st.integers(min_value=0, max_value=3),
                        min_size=1, max_size=3))
def test_interleaving_count_matches_enumeration(lengths):
    from repro.verify.interleave import (
        AccessSpec,
        enumerate_interleavings,
    )

    streams = [
        [AccessSpec(pid + 1, "store", i * 8, 0) for i in range(n)]
        for pid, n in enumerate(lengths)
    ]
    count = sum(1 for _ in enumerate_interleavings(streams))
    assert count == interleaving_count(lengths)


@settings(max_examples=60, deadline=None)
@given(n=st.integers(min_value=1, max_value=50))
def test_frame_allocator_never_hands_out_same_frame_twice(n):
    from repro.hw.memory import FrameAllocator

    alloc = FrameAllocator(0, 64 * PAGE_SIZE)
    frames = set()
    for _ in range(min(n, 64)):
        frame = alloc.alloc_frame()
        assert frame not in frames
        frames.add(frame)
