"""Property-based tests (hypothesis) for the address/word codecs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.dma.protocols.keyed import (
    KEY_FIELD_BITS,
    pack_key_word,
    unpack_key_word,
)
from repro.hw.dma.shadow import ShadowLayout
from repro.hw.nic import GlobalAddressMap
from repro.hw.atomic_unit import AtomicShadowLayout

LAYOUT = ShadowLayout()
AMAP = GlobalAddressMap()
ALAYOUT = AtomicShadowLayout()


@given(paddr=st.integers(min_value=0,
                         max_value=LAYOUT.max_argument_paddr - 1),
       ctx=st.integers(min_value=0, max_value=3))
def test_shadow_roundtrip(paddr, ctx):
    ref = LAYOUT.decode_paddr(LAYOUT.shadow_paddr(paddr, ctx))
    assert (ref.ctx_id, ref.paddr) == (ctx, paddr)


@given(paddr=st.integers(min_value=0,
                         max_value=LAYOUT.max_argument_paddr - 1),
       ctx=st.integers(min_value=0, max_value=3))
def test_shadow_addresses_stay_inside_window(paddr, ctx):
    shadow = LAYOUT.shadow_paddr(paddr, ctx)
    assert (LAYOUT.window_base <= shadow
            < LAYOUT.window_base + LAYOUT.window_size)


@given(a=st.tuples(st.integers(0, LAYOUT.max_argument_paddr - 1),
                   st.integers(0, 3)),
       b=st.tuples(st.integers(0, LAYOUT.max_argument_paddr - 1),
                   st.integers(0, 3)))
def test_shadow_encoding_injective(a, b):
    if a != b:
        assert LAYOUT.shadow_paddr(*a) != LAYOUT.shadow_paddr(*b)


@given(key=st.integers(min_value=0,
                       max_value=(1 << KEY_FIELD_BITS) - 1),
       ctx=st.integers(min_value=0, max_value=7),
       arg=st.integers(min_value=0, max_value=1))
def test_key_word_roundtrip(key, ctx, arg):
    assert unpack_key_word(pack_key_word(key, ctx, arg)) == (key, ctx,
                                                             arg)


@given(key=st.integers(min_value=0,
                       max_value=(1 << KEY_FIELD_BITS) - 1),
       ctx=st.integers(min_value=0, max_value=7),
       arg=st.integers(min_value=0, max_value=1))
def test_key_word_fits_64_bits(key, ctx, arg):
    assert 0 <= pack_key_word(key, ctx, arg) < (1 << 64)


@given(node=st.integers(min_value=0, max_value=63),
       local=st.integers(min_value=0, max_value=(1 << 28) - 1))
def test_global_address_roundtrip(node, local):
    assert AMAP.decode(AMAP.encode(node, local)) == (node, local)


@given(node=st.integers(min_value=0, max_value=63),
       local=st.integers(min_value=0, max_value=(1 << 28) - 1))
def test_global_encoding_fits_shadow_argument_field(node, local):
    assert AMAP.encode(node, local) < LAYOUT.max_argument_paddr


@given(op=st.integers(min_value=0, max_value=3),
       ctx=st.integers(min_value=0, max_value=3),
       paddr=st.integers(min_value=0, max_value=(1 << 28) - 1))
def test_atomic_shadow_roundtrip(op, ctx, paddr):
    offset = (ALAYOUT.shadow_paddr(op, paddr, ctx)
              - ALAYOUT.window_base)
    assert ALAYOUT.decode_offset(offset) == (op, ctx, paddr)


@settings(max_examples=50)
@given(value=st.integers(min_value=0, max_value=(1 << 64) - 1))
def test_status_signedness(value):
    from repro.hw.dma.status import to_signed

    signed = to_signed(value)
    assert -(1 << 63) <= signed < (1 << 63)
    assert signed % (1 << 64) == value % (1 << 64)
