"""Property-based tests for the messaging library.

Random payload sequences through randomly sized rings must always come
out complete, in order, and byte-identical — under any interleaving of
sends and drains the flow control permits.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.machine import MachineConfig, Workstation
from repro.msg import MessageChannel, RingLayout


def loopback_channel(n_slots, slot_size):
    ws = Workstation(MachineConfig(method="extshadow"))
    sender = ws.kernel.spawn("s")
    receiver = ws.kernel.spawn("r")
    ws.kernel.enable_user_dma(sender)
    ws.kernel.enable_user_dma(receiver)
    return ws, MessageChannel.create(
        ws, sender, ws, receiver,
        RingLayout(n_slots=n_slots, slot_size=slot_size))


@settings(max_examples=25, deadline=None)
@given(payloads=st.lists(st.binary(min_size=0, max_size=56),
                         min_size=1, max_size=12),
       n_slots=st.sampled_from([2, 4, 8]))
def test_fifo_complete_and_intact(payloads, n_slots):
    ws, channel = loopback_channel(n_slots, 64)
    delivered = []
    for payload in payloads:
        while not channel.send(payload):
            delivered.extend(channel.drain())
            ws.drain()
    delivered.extend(channel.drain())
    ws.drain()
    delivered.extend(channel.drain())
    assert delivered == payloads


@settings(max_examples=25, deadline=None)
@given(data=st.data(),
       payloads=st.lists(st.binary(min_size=1, max_size=56),
                         min_size=1, max_size=10))
def test_arbitrary_send_drain_interleaving(data, payloads):
    """Drain at random points between sends; order still holds."""
    ws, channel = loopback_channel(4, 64)
    delivered = []
    for payload in payloads:
        if data.draw(st.booleans()):
            delivered.extend(channel.drain())
        while not channel.send(payload):
            delivered.extend(channel.drain())
            ws.drain()
    delivered.extend(channel.drain())
    ws.drain()
    delivered.extend(channel.drain())
    assert delivered == payloads


@settings(max_examples=15, deadline=None)
@given(count=st.integers(min_value=1, max_value=30))
def test_in_flight_never_exceeds_ring_capacity(count):
    ws, channel = loopback_channel(4, 64)
    for index in range(count):
        if not channel.send(bytes([index % 250])):
            assert channel.in_flight >= 4  # refused only when full
            channel.drain()
            ws.drain()
            assert channel.send(bytes([index % 250]))
        assert channel.in_flight <= 4
    channel.drain()
