"""Property tests for the modern methods' protection substrate.

Three families, targeted at where IOMMU/capability protection can rot:

* **containment** — under *random* interleavings of kernel operations
  (map/unmap/warm/invalidate, mint/revoke) and user initiation
  attempts, no transfer ever starts outside the currently-mapped /
  currently-valid bounds.  For the IOMMU this is an exact oracle: with
  shoot-down on, translation must agree with a model that consults only
  the page table (the IOTLB can never add rights);
* **invalidation ≡ cold** — after an explicit IOTLB invalidation, the
  unit is observationally equivalent to a freshly-built one holding the
  same page table (true even for the no-shootdown variant: explicit
  invalidation flushes what unmap leaked);
* **snapshot round-trips** — the checker's backtracking substrate
  restores IOMMU tables *and IOTLB order*, and the capio capability /
  latch / counter state, bit for bit.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.methods import make_protocol
from repro.hw.dma.protocols.capio import pack_cap_word
from repro.hw.dma.protocols.keyed import ARG_DESTINATION, ARG_SOURCE
from repro.hw.dma.recognizer import SetupOp
from repro.hw.dma.status import STATUS_FAILURE
from repro.hw.iommu import Iommu
from repro.hw.pagetable import PAGE_SIZE, page_base, page_offset
from repro.verify.interleave import AccessSpec, ProtocolHarness

N_CTX = 3
N_PAGES = 6  # well inside the harness's 8-page RAM

ctx_ids = st.integers(0, N_CTX - 1)
pages = st.sampled_from([n * PAGE_SIZE for n in range(N_PAGES)])
offsets = st.sampled_from([0, 8, 256, PAGE_SIZE - 64])
sizes = st.sampled_from([0, 1, 64, 256, PAGE_SIZE, PAGE_SIZE + 64,
                         2 * PAGE_SIZE])

iommu_ops = st.one_of(
    st.tuples(st.just("map"), ctx_ids, pages, pages, st.booleans()),
    st.tuples(st.just("unmap"), ctx_ids, pages),
    st.tuples(st.just("warm"), ctx_ids, pages),
    st.tuples(st.just("inval"), st.one_of(st.none(), ctx_ids)),
    st.tuples(st.just("translate"), ctx_ids,
              st.builds(lambda p, o: p + o, pages, offsets),
              sizes, st.booleans()),
)

ModelEntry = Tuple[int, bool]  # (phys_page, writable)
Model = Dict[Tuple[int, int], ModelEntry]


def model_translate(mappings: Model, ctx_id: int, iova: int, size: int,
                    write: bool) -> Optional[int]:
    """Reference translation consulting only the page table."""
    if size <= 0:
        return None
    entry = mappings.get((ctx_id, page_base(iova)))
    if entry is None or (write and not entry[1]):
        return None
    phys = entry[0] + page_offset(iova)
    expected = entry[0]
    page = page_base(iova) + PAGE_SIZE
    while page < iova + size:
        nxt = mappings.get((ctx_id, page))
        expected += PAGE_SIZE
        if nxt is None or (write and not nxt[1]) or nxt[0] != expected:
            return None
        page += PAGE_SIZE
    return phys


def apply_op(iommu: Iommu, mappings: Model, op) -> None:
    kind = op[0]
    if kind == "map":
        _, ctx_id, iova_page, phys_page, writable = op
        iommu.map(ctx_id, iova_page, phys_page, writable)
        mappings[(ctx_id, iova_page)] = (phys_page, writable)
    elif kind == "unmap":
        _, ctx_id, iova_page = op
        iommu.unmap(ctx_id, iova_page)
        mappings.pop((ctx_id, iova_page), None)
    elif kind == "warm":
        iommu.warm(op[1], op[2])
    elif kind == "inval":
        iommu.invalidate(op[1])


class TestIommuContainment:
    """The IOTLB is an accelerator, never an authority."""

    @settings(max_examples=200, deadline=None)
    @given(st.lists(iommu_ops, max_size=40))
    def test_translation_agrees_with_page_table_oracle(self, ops):
        """With shoot-down, caching is invisible: every translation —
        hit or miss, after any map/unmap/warm/invalidate history —
        equals the model's page-table walk."""
        iommu = Iommu(shootdown=True)
        mappings: Model = {}
        for op in ops:
            if op[0] == "translate":
                _, ctx_id, iova, size, write = op
                assert iommu.translate(ctx_id, iova, size, write) == \
                    model_translate(mappings, ctx_id, iova, size, write)
            else:
                apply_op(iommu, mappings, op)

    @settings(max_examples=200, deadline=None)
    @given(st.lists(iommu_ops, max_size=40))
    def test_iotlb_stays_coherent_and_bounded(self, ops):
        """Every cached entry mirrors the live table, and the FIFO
        never outgrows its capacity."""
        iommu = Iommu(shootdown=True)
        mappings: Model = {}
        for op in ops:
            if op[0] == "translate":
                iommu.translate(op[1], op[2], op[3], op[4])
            else:
                apply_op(iommu, mappings, op)
            table, tlb, *_ = iommu.snapshot()
            assert len(tlb) <= iommu.tlb_capacity
            for key, entry in tlb:
                assert table.get(key) == entry

    @settings(max_examples=100, deadline=None)
    @given(st.lists(iommu_ops, max_size=40), st.booleans(),
           st.lists(st.tuples(ctx_ids,
                              st.builds(lambda p, o: p + o, pages, offsets),
                              sizes, st.booleans()),
                    max_size=10))
    def test_invalidation_is_observationally_cold(self, ops, shootdown,
                                                  queries):
        """invalidate() ≡ a fresh unit with the same page table — for
        both variants (explicit invalidation flushes what a
        no-shootdown unmap leaked)."""
        iommu = Iommu(shootdown=shootdown)
        mappings: Model = {}
        for op in ops:
            if op[0] == "translate":
                iommu.translate(op[1], op[2], op[3], op[4])
            else:
                apply_op(iommu, mappings, op)
        iommu.invalidate()
        cold = Iommu(shootdown=shootdown)
        for (ctx_id, iova_page), (phys_page, writable) in mappings.items():
            cold.map(ctx_id, iova_page, phys_page, writable)
        assert iommu.fingerprint() == cold.fingerprint()
        for ctx_id, iova, size, write in queries:
            assert (iommu.translate(ctx_id, iova, size, write)
                    == cold.translate(ctx_id, iova, size, write))
            # Both caches now hold the same (fresh) translations.
            assert iommu.fingerprint() == cold.fingerprint()

    @settings(max_examples=100, deadline=None)
    @given(st.lists(iommu_ops, max_size=25),
           st.lists(iommu_ops, max_size=25))
    def test_snapshot_restore_round_trips(self, prefix, suffix):
        """snapshot/restore returns tables, IOTLB order, and counters
        exactly — the incremental checker backtracks through here."""
        iommu = Iommu(shootdown=True)
        mappings: Model = {}
        for op in prefix:
            if op[0] == "translate":
                iommu.translate(op[1], op[2], op[3], op[4])
            else:
                apply_op(iommu, mappings, op)
        saved = iommu.snapshot()
        fingerprint = iommu.fingerprint()
        for op in suffix:
            if op[0] == "translate":
                iommu.translate(op[1], op[2], op[3], op[4])
            else:
                apply_op(iommu, dict(mappings), op)
        iommu.restore(saved)
        assert iommu.snapshot() == saved
        assert iommu.fingerprint() == fingerprint


# ----------------------------------------------------------------------
# capio: mint/revoke interleavings
# ----------------------------------------------------------------------

CAP_IDS = (1, 2, 3)
NONCES = {1: 0x1111, 2: 0x2222, 3: 0x3333}

cap_kernel_ops = st.one_of(
    st.tuples(st.just("mint"), st.sampled_from(CAP_IDS),
              st.sampled_from([n * PAGE_SIZE for n in range(4)]),
              st.sampled_from([256, PAGE_SIZE, 2 * PAGE_SIZE]),
              st.booleans(), st.booleans()),
    st.tuples(st.just("revoke"), st.sampled_from(CAP_IDS)),
)

epoch_choices = st.sampled_from(["current", "stale"])

cap_attempts = st.tuples(
    st.just("attempt"),
    st.sampled_from(CAP_IDS), epoch_choices, offsets,   # source token
    st.sampled_from(CAP_IDS), epoch_choices, offsets,   # destination token
    sizes)

capio_programs = st.lists(st.one_of(cap_kernel_ops, cap_attempts),
                          max_size=25)


class ModelCap:
    def __init__(self, base, limit, readable, writable):
        self.base = base
        self.limit = limit
        self.readable = readable
        self.writable = writable
        self.epoch = 0


def token_epoch(cap: ModelCap, choice: str) -> int:
    return (cap.epoch - 1 if choice == "stale" else cap.epoch) & 0xF


def attempt_valid(caps: Dict[int, ModelCap], attempt) -> bool:
    """Whether the attempt's own tokens fully authorize it right now."""
    _, src_id, src_epoch, src_off, dst_id, dst_epoch, dst_off, size = attempt
    src, dst = caps.get(src_id), caps.get(dst_id)
    if src is None or dst is None or size <= 0:
        return False
    if token_epoch(src, src_epoch) != (src.epoch & 0xF):
        return False
    if token_epoch(dst, dst_epoch) != (dst.epoch & 0xF):
        return False
    return (src.readable and dst.writable
            and 0 <= src_off and src_off + size <= src.limit
            and 0 <= dst_off and dst_off + size <= dst.limit)


def contained_now(caps: Dict[int, ModelCap], addr: int, size: int,
                  write: bool) -> bool:
    """Some currently-valid capability covers [addr, addr+size)."""
    for cap in caps.values():
        if (cap.writable if write else cap.readable) \
                and cap.base <= addr and addr + size <= cap.base + cap.limit:
            return True
    return False


class TestCapioContainment:
    """Random mint/revoke/attempt interleavings never leak a transfer."""

    @settings(max_examples=150, deadline=None)
    @given(capio_programs)
    def test_transfers_stay_inside_live_capabilities(self, program):
        """Soundness *and* completeness: a transfer starts iff the
        attempt's tokens fully authorize it at fire time, and every
        started transfer lies inside capabilities valid *at that
        moment* — revocation between mint and fire always wins."""
        harness = ProtocolHarness(lambda: make_protocol("capio"))
        caps: Dict[int, ModelCap] = {}
        for op in program:
            if op[0] == "mint":
                _, cap_id, base, limit, readable, writable = op
                harness.protocol.apply_setup(SetupOp("cap-mint", (
                    cap_id, 0, 1, base, limit, readable, writable,
                    NONCES[cap_id])))
                caps[cap_id] = ModelCap(base, limit, readable, writable)
                continue
            if op[0] == "revoke":
                harness.protocol.apply_setup(SetupOp("cap-revoke", (op[1],)))
                if op[1] in caps:
                    caps[op[1]].epoch += 1
                continue
            (_, src_id, src_epoch, src_off,
             dst_id, dst_epoch, dst_off, size) = op
            tokens = []
            for cap_id, choice, arg in ((dst_id, dst_epoch, ARG_DESTINATION),
                                        (src_id, src_epoch, ARG_SOURCE)):
                cap = caps.get(cap_id)
                tokens.append(None if cap is None else pack_cap_word(
                    cap_id, token_epoch(cap, choice), NONCES[cap_id], arg))
            before = len(harness.engine.initiations)
            if tokens[0] is not None:
                harness.deliver(AccessSpec(2, "store", dst_off, tokens[0]))
            if tokens[1] is not None:
                harness.deliver(AccessSpec(2, "store", src_off, tokens[1]))
            harness.deliver(AccessSpec(2, "ctx-store", 0, size))
            status = harness.deliver(AccessSpec(2, "ctx-load", 0,
                                                final=True))
            if attempt_valid(caps, op):
                assert status != STATUS_FAILURE
            for record in harness.engine.initiations[before:]:
                if not record.ok:
                    continue
                assert contained_now(caps, record.psrc, record.size,
                                     write=False)
                assert contained_now(caps, record.pdst, record.size,
                                     write=True)

    @settings(max_examples=100, deadline=None)
    @given(capio_programs, capio_programs)
    def test_protocol_snapshot_round_trips(self, prefix, suffix):
        """The capio snapshot returns capabilities (epochs included),
        latched argument refs, and the rejection counter exactly.

        Kernel ops (mint/revoke) are untimed setup outside the
        journal's coverage — as in the real pipeline, they all happen
        before checking starts; only user accesses run past the mark.
        """
        harness = ProtocolHarness(lambda: make_protocol("capio"))
        harness.enable_journal()
        caps = self._run(harness, prefix)
        for op in suffix:  # pre-apply the suffix's kernel ops
            if op[0] != "attempt":
                self._apply_kernel(harness, caps, op)
        mark = harness.snapshot()
        state = harness.protocol.snapshot_state()
        fingerprint = harness.protocol.state_fingerprint()
        for op in suffix:
            if op[0] == "attempt":
                self._attempt(harness, caps, op)
        harness.restore(mark)
        assert harness.protocol.snapshot_state() == state
        assert harness.protocol.state_fingerprint() == fingerprint

    @classmethod
    def _run(cls, harness: ProtocolHarness, program) -> Dict[int, ModelCap]:
        caps: Dict[int, ModelCap] = {}
        for op in program:
            if op[0] == "attempt":
                cls._attempt(harness, caps, op)
            else:
                cls._apply_kernel(harness, caps, op)
        return caps

    @staticmethod
    def _apply_kernel(harness: ProtocolHarness, caps: Dict[int, ModelCap],
                      op) -> None:
        if op[0] == "mint":
            _, cap_id, base, limit, readable, writable = op
            harness.protocol.apply_setup(SetupOp("cap-mint", (
                cap_id, 0, 1, base, limit, readable, writable,
                NONCES[cap_id])))
            caps[cap_id] = ModelCap(base, limit, readable, writable)
        else:
            harness.protocol.apply_setup(SetupOp("cap-revoke", (op[1],)))
            if op[1] in caps:
                caps[op[1]].epoch += 1

    @staticmethod
    def _attempt(harness: ProtocolHarness, caps: Dict[int, ModelCap],
                 op) -> None:
        (_, src_id, src_epoch, src_off,
         dst_id, dst_epoch, dst_off, size) = op
        for cap_id, choice, arg, off in (
                (dst_id, dst_epoch, ARG_DESTINATION, dst_off),
                (src_id, src_epoch, ARG_SOURCE, src_off)):
            cap = caps.get(cap_id)
            if cap is not None:
                word = pack_cap_word(cap_id, token_epoch(cap, choice),
                                     NONCES[cap_id], arg)
                harness.deliver(AccessSpec(2, "store", off, word))
        harness.deliver(AccessSpec(2, "ctx-store", 0, size))
        harness.deliver(AccessSpec(2, "ctx-load", 0, final=True))
