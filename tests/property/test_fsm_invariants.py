"""Property-based tests on the protocol FSMs' safety invariants.

Hypothesis generates access soups from multiple processes.  An early
version of these tests generated *unrestricted* soups and hypothesis
promptly refuted the naive single-issuer property: with no MMU and a
shared destination page, an adversary can issue the pattern's final
load itself (exactly the Fig. 6 mechanism).  That is not a protocol bug
— it is the paper's own premise that destinations are private and page
protection restricts who can issue which shadow access.  The generators
below therefore mirror the MMU: each pid stores only to pages it owns,
and loads its own pages plus one shared read-only page.  Under those
(real) constraints the §3.3.1 guarantees hold for every soup:

* **repeated5 slot fidelity** — every started DMA's destination slots
  (1, 3, 5) were issued by the destination's owner, and every slot's
  access really occurred with the right type and address;
* **repeated5 single-issuer** — when every process runs *well-formed*
  5-access sequences (the paper's premise), all five contributing
  accesses share one pid, over random interleavings;
* **keyed no-forge** — a started DMA via a context implies the issuing
  stores carried that context's exact installed key;
* **extshadow ctx fidelity** — a started DMA's latched destination was
  stored through the same CONTEXT_ID that loaded it.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.dma.protocols.extshadow import ExtendedShadowProtocol
from repro.hw.dma.protocols.keyed import KeyedProtocol, pack_key_word
from repro.hw.dma.protocols.repeated import RepeatedPassingProtocol
from repro.hw.pagetable import PAGE_SIZE
from repro.verify.interleave import AccessSpec, ProtocolHarness

PAGES = [i * PAGE_SIZE for i in range(6)]

#: Page ownership for the MMU-restricted soups: pid -> owned pages.
OWNED = {1: (0 * PAGE_SIZE, 1 * PAGE_SIZE),
         2: (2 * PAGE_SIZE, 3 * PAGE_SIZE),
         3: (4 * PAGE_SIZE,)}
#: One page everyone may read (the paper's "possibly public" data).
SHARED_READABLE = 5 * PAGE_SIZE


def restricted_access(draw):
    """One access a real MMU would permit: stores to owned pages only,
    loads to owned pages or the shared read-only page."""
    pid = draw(st.integers(min_value=1, max_value=3))
    op = draw(st.sampled_from(["store", "load"]))
    if op == "store":
        paddr = draw(st.sampled_from(OWNED[pid]))
        size = draw(st.sampled_from([32, 64]))
        return AccessSpec(pid, "store", paddr, size)
    paddr = draw(st.sampled_from(OWNED[pid] + (SHARED_READABLE,)))
    return AccessSpec(pid, "load", paddr, 0)


@settings(max_examples=200, deadline=None)
@given(data=st.data(),
       n=st.integers(min_value=1, max_value=14))
def test_repeated5_slot_fidelity_under_mmu_restrictions(data, n):
    """Destination slots come from the destination's owner; every slot
    corresponds to a real access of the right kind and address."""
    harness = ProtocolHarness(lambda: RepeatedPassingProtocol(5))
    accesses = [restricted_access(data.draw) for _ in range(n)]
    for access in accesses:
        harness.deliver(access)
    records = harness.engine.started_transfers()
    contributors = harness.protocol.completed_contributors
    for record, pids in zip(records, contributors):
        dst_owner_pids = {pids[0], pids[2], pids[4]}
        assert len(dst_owner_pids) == 1
        owner = dst_owner_pids.pop()
        assert record.pdst in OWNED[owner]
        assert record.issuer == owner  # the final slot is a dst load
        for slot in (1, 3):
            reader = pids[slot]
            assert (record.psrc in OWNED[reader]
                    or record.psrc == SHARED_READABLE)


def well_formed_sequences(draw):
    """K processes, each with a complete Fig. 7 sequence on a private
    destination and a readable source — the paper's premise."""
    k = draw(st.integers(min_value=1, max_value=3))
    streams = []
    for pid in range(1, k + 1):
        dst = OWNED[pid][0]
        src_options = OWNED[pid] + (SHARED_READABLE,)
        src = draw(st.sampled_from(src_options))
        size = draw(st.sampled_from([32, 64]))
        streams.append([
            AccessSpec(pid, "store", dst, size),
            AccessSpec(pid, "load", src),
            AccessSpec(pid, "store", dst, size),
            AccessSpec(pid, "load", src),
            AccessSpec(pid, "load", dst, final=True),
        ])
    return streams


@settings(max_examples=150, deadline=None)
@given(data=st.data())
def test_repeated5_single_issuer_for_well_formed_programs(data):
    """§3.3.1's theorem over random interleavings of well-formed
    sequences (dst private per process)."""
    streams = well_formed_sequences(data.draw)
    # Draw one random interleaving by repeatedly picking a stream.
    cursors = [0] * len(streams)
    order = []
    while any(c < len(s) for c, s in zip(cursors, streams)):
        ready = [i for i, (c, s) in enumerate(zip(cursors, streams))
                 if c < len(s)]
        pick = data.draw(st.sampled_from(ready))
        order.append(streams[pick][cursors[pick]])
        cursors[pick] += 1
    harness = ProtocolHarness(lambda: RepeatedPassingProtocol(5))
    for access in order:
        harness.deliver(access)
    for pids in harness.protocol.completed_contributors:
        assert len(set(pids)) == 1


@settings(max_examples=150, deadline=None)
@given(data=st.data(),
       n=st.integers(min_value=1, max_value=12))
def test_keyed_never_starts_without_correct_key(data, n):
    keys = {0: 0xAAA, 1: 0xBBB}
    harness = ProtocolHarness(KeyedProtocol)
    for ctx_id, key in keys.items():
        harness.install_key(ctx_id, key)
    issued = []
    for _ in range(n):
        pid = data.draw(st.integers(min_value=1, max_value=3))
        kind = data.draw(st.sampled_from(
            ["shadow", "ctx-store", "ctx-load"]))
        ctx = data.draw(st.integers(min_value=0, max_value=1))
        if kind == "shadow":
            key = data.draw(st.sampled_from(
                [0xAAA, 0xBBB, 0x123, 0]))
            arg = data.draw(st.integers(min_value=0, max_value=1))
            paddr = data.draw(st.sampled_from(PAGES))
            access = AccessSpec(pid, "store", paddr,
                                pack_key_word(key, ctx, arg))
            issued.append((pid, ctx, key))
        elif kind == "ctx-store":
            access = AccessSpec(pid, "ctx-store",
                                data=data.draw(st.sampled_from([32, 64])),
                                ctx_id=ctx)
        else:
            access = AccessSpec(pid, "ctx-load", ctx_id=ctx)
        harness.deliver(access)
    for record in harness.engine.started_transfers():
        ctx = record.ctx_id
        # Some store with the *correct* key for this context must have
        # been issued, else its address registers could not be filled.
        assert any(c == ctx and k == keys[ctx] for (_p, c, k) in issued)


@settings(max_examples=150, deadline=None)
@given(data=st.data(),
       n=st.integers(min_value=1, max_value=12))
def test_extshadow_start_uses_single_context(data, n):
    harness = ProtocolHarness(ExtendedShadowProtocol)
    stores = []  # (ctx, paddr, size)
    for _ in range(n):
        pid = data.draw(st.integers(min_value=1, max_value=3))
        op = data.draw(st.sampled_from(["store", "load"]))
        ctx = data.draw(st.integers(min_value=0, max_value=3))
        paddr = data.draw(st.sampled_from(PAGES))
        size = data.draw(st.sampled_from([32, 64]))
        if op == "store":
            stores.append((ctx, paddr, size))
            harness.deliver(AccessSpec(pid, "store", paddr, size,
                                       ctx_id=ctx))
        else:
            harness.deliver(AccessSpec(pid, "load", paddr, ctx_id=ctx))
    for record in harness.engine.started_transfers():
        # The destination/size must have been stored through the same
        # context that performed the load.
        assert (record.ctx_id, record.pdst,
                record.size) in stores


@settings(max_examples=100, deadline=None)
@given(data=st.data(), n=st.integers(min_value=1, max_value=10))
def test_no_protocol_crashes_on_arbitrary_soup(data, n):
    """Robustness: arbitrary access orders never raise from the FSMs."""
    for factory in (lambda: RepeatedPassingProtocol(3),
                    lambda: RepeatedPassingProtocol(4),
                    KeyedProtocol, ExtendedShadowProtocol):
        harness = ProtocolHarness(factory)
        for _ in range(n):
            pid = data.draw(st.integers(min_value=1, max_value=2))
            op = data.draw(st.sampled_from(
                ["store", "load", "ctx-store", "ctx-load"]))
            paddr = data.draw(st.sampled_from(PAGES))
            word = data.draw(st.integers(min_value=0,
                                         max_value=(1 << 64) - 1))
            ctx = data.draw(st.integers(min_value=0, max_value=3))
            harness.deliver(AccessSpec(pid, op, paddr, word, ctx_id=ctx))
