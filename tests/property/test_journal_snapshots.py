"""Journaled snapshots are observationally identical to deep copies.

The undo journal (``ProtocolHarness.enable_journal``) replaces the
legacy copy-everything snapshot path with O(changes) mark/replay.  The
checker's soundness rests on the two paths being indistinguishable:
every observable bit of harness state — RAM bytes, simulator clock and
event set, engine registers and tables, initiation records, protocol
FSM scalars — must evolve identically under deliver, and return
identically under restore, including arbitrarily nested snapshot
stacks and with the observability layers (trace log, span tracer)
recording.
"""

from __future__ import annotations

from typing import List, Tuple

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.conftest import install_modern_setup, modern_stream_kwargs

from repro.core.methods import METHODS, make_protocol
from repro.verify.interleave import (
    AccessSpec,
    ProtocolHarness,
    initiation_stream,
)

KEY_1, KEY_2 = 0xAAA111, 0xBBB222
SRC_1, DST_1 = 0, 4096
SRC_2, DST_2 = 8192, 12288
SIZE = 256


def method_streams(method: str) -> List[List[AccessSpec]]:
    """Two-process access streams exercising *method*'s recognizer."""
    if method == "kernel":
        return [
            [AccessSpec(1, "store", SRC_1, SIZE),
             AccessSpec(1, "load", SRC_1, final=True)],
            [AccessSpec(2, "load", SRC_2, final=True)],
        ]
    kwargs_1 = {}
    kwargs_2 = {}
    if method == "keyed":
        kwargs_1 = {"key": KEY_1, "ctx_id": 0}
        kwargs_2 = {"key": KEY_2, "ctx_id": 1}
    elif method == "extshadow":
        kwargs_1 = {"ctx_id": 0}
        kwargs_2 = {"ctx_id": 1}
    else:
        kwargs_1, kwargs_2 = modern_stream_kwargs(method)
    return [
        initiation_stream(method, 1, SRC_1, DST_1, SIZE, **kwargs_1),
        initiation_stream(method, 2, SRC_2, DST_2, SIZE, **kwargs_2),
    ]


def make_method_harness(method: str, journaled: bool) -> ProtocolHarness:
    harness = ProtocolHarness(lambda: make_protocol(method))
    if method == "keyed":
        harness.install_key(0, KEY_1)
        harness.install_key(1, KEY_2)
    install_modern_setup(harness, method)
    if journaled:
        harness.enable_journal()
    return harness


def observe(harness: ProtocolHarness) -> Tuple:
    """Every observable bit of harness state, as comparable values.

    Deliberately identical between journal and legacy modes — nothing
    here reads the journal, so two harnesses in different modes can be
    compared directly.
    """
    scalars = tuple(sorted(
        (name, value) for name, value in vars(harness.protocol).items()
        if isinstance(value, (int, str, bool, type(None)))))
    return (
        harness.ram.read(0, harness.ram_size),
        harness.sim.now,
        harness.sim.pending,
        harness.sim.events_fired,
        harness.sim.live_event_signature(),
        harness.engine.fingerprint(),
        tuple(harness.engine.initiations),
        harness.engine.protocol_violations,
        scalars,
    )


def interleaving(data, streams: List[List[AccessSpec]]) -> List[AccessSpec]:
    """Draw one random interleaving of *streams* (streams kept in order)."""
    order: List[AccessSpec] = []
    positions = [0] * len(streams)
    while True:
        live = [i for i, (p, s) in enumerate(zip(positions, streams))
                if p < len(s)]
        if not live:
            return order
        index = data.draw(st.sampled_from(live))
        order.append(streams[index][positions[index]])
        positions[index] += 1


@settings(max_examples=40, deadline=None)
@given(method=st.sampled_from(sorted(METHODS)), data=st.data())
def test_journaled_matches_legacy_random_walk(method, data):
    """Journal and deep-copy harnesses stay in observational lockstep.

    For every access of a random interleaving, both harnesses do
    snapshot -> deliver -> compare -> restore -> compare -> re-deliver,
    so divergence is caught at the exact step it appears.
    """
    jh = make_method_harness(method, journaled=True)
    lh = make_method_harness(method, journaled=False)
    assert observe(jh) == observe(lh)
    for access in interleaving(data, method_streams(method)):
        before = observe(lh)
        j_token, l_token = jh.snapshot(), lh.snapshot()
        j_status, l_status = jh.deliver(access), lh.deliver(access)
        assert j_status == l_status
        assert observe(jh) == observe(lh)
        jh.restore(j_token)
        lh.restore(l_token)
        assert observe(jh) == before
        assert observe(lh) == before
        jh.deliver(access)  # commit the step and walk one level deeper
        lh.deliver(access)
        assert observe(jh) == observe(lh)


@settings(max_examples=40, deadline=None)
@given(method=st.sampled_from(sorted(METHODS)), data=st.data())
def test_nested_snapshot_stack_unwinds_exactly(method, data):
    """A random LIFO stack of journal marks restores every level.

    Mirrors the checker's DFS: marks nest arbitrarily deep, each undo
    must land bit-exactly on the state its mark captured.
    """
    harness = make_method_harness(method, journaled=True)
    order = interleaving(data, method_streams(method))
    stack: List[Tuple[object, Tuple]] = []
    cursor = 0
    for _ in range(3 * len(order)):
        can_push = cursor < len(order)
        can_pop = bool(stack)
        if not (can_push or can_pop):
            break
        push = can_push and (not can_pop or data.draw(st.booleans()))
        if push:
            stack.append((harness.snapshot(), observe(harness)))
            harness.deliver(order[cursor])
            cursor += 1
        else:
            token, expected = stack.pop()
            harness.restore(token)
            cursor -= 1
            assert observe(harness) == expected
    while stack:
        token, expected = stack.pop()
        harness.restore(token)
        assert observe(harness) == expected


@pytest.mark.parametrize("method", sorted(METHODS))
def test_spans_and_trace_survive_journal_restore(method):
    """Observability state is part of the journal's restore contract.

    With spans and tracing enabled, a deliver mutates the span tracer
    (open/finished spans, id counter) and appends trace events; undoing
    to a mark must put both back exactly.
    """
    harness = make_method_harness(method, journaled=True)
    engine = harness.engine
    engine.spans.enabled = True
    engine.trace.enabled = True

    def obs_state() -> Tuple:
        spans = engine.spans
        return (spans._next_id, list(spans._finished), dict(spans._open),
                list(spans._stack), spans.dropped, len(engine.trace))

    order = method_streams(method)[0] + method_streams(method)[1]
    harness.deliver(order[0])  # snapshot from a non-virgin state
    before = obs_state()
    token = harness.snapshot()
    for access in order[1:]:
        harness.deliver(access)
    harness.restore(token)
    assert obs_state() == before
