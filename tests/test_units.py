"""Unit tests for the time/size/bandwidth unit helpers."""

import pytest

from repro.errors import ClockError
from repro.units import (
    GIB,
    KIB,
    MIB,
    bandwidth_of,
    fmt_bandwidth,
    fmt_time,
    gbps,
    gib,
    ghz,
    kib,
    mbps,
    mhz,
    mib,
    ms,
    ns,
    period_ps,
    ps,
    seconds,
    to_ms,
    to_ns,
    to_seconds,
    to_us,
    transfer_time,
    us,
)


class TestTimeConversions:
    def test_scale_chain(self):
        assert ns(1) == 1_000
        assert us(1) == 1_000_000
        assert ms(1) == 1_000_000_000
        assert seconds(1) == 1_000_000_000_000
        assert ps(123.4) == 123

    def test_roundtrips(self):
        assert to_ns(ns(42)) == 42.0
        assert to_us(us(3.5)) == 3.5
        assert to_ms(ms(2)) == 2.0
        assert to_seconds(seconds(1)) == 1.0

    def test_fractionals_round(self):
        assert ns(1.6) == 1_600
        assert us(0.0005) == 500


class TestFrequencies:
    def test_mhz_ghz(self):
        assert mhz(150) == 150e6
        assert ghz(1) == 1e9

    def test_period(self):
        assert period_ps(mhz(12.5)) == 80_000
        assert period_ps(ghz(1)) == 1_000

    def test_bad_frequency(self):
        with pytest.raises(ClockError):
            period_ps(0)
        with pytest.raises(ClockError):
            period_ps(-5)


class TestSizes:
    def test_constants(self):
        assert KIB == 1024
        assert MIB == 1024 ** 2
        assert GIB == 1024 ** 3

    def test_helpers(self):
        assert kib(2) == 2048
        assert mib(1.5) == 1_572_864
        assert gib(1) == GIB


class TestBandwidth:
    def test_transfer_time_basic(self):
        # 125 bytes = 1000 bits at 1 Mb/s = 1 ms.
        assert transfer_time(125, mbps(1)) == ms(1)

    def test_transfer_time_gigabit(self):
        assert transfer_time(125_000_000, gbps(1)) == seconds(1)

    def test_bandwidth_of_inverse(self):
        elapsed = transfer_time(1_000_000, mbps(155))
        assert bandwidth_of(1_000_000, elapsed) == pytest.approx(
            mbps(155), rel=1e-6)

    def test_validation(self):
        with pytest.raises(ClockError):
            transfer_time(10, 0)
        with pytest.raises(ClockError):
            bandwidth_of(10, 0)


class TestFormatting:
    def test_fmt_time_units(self):
        assert fmt_time(500) == "500 ps"
        assert "ns" in fmt_time(ns(5))
        assert "us" in fmt_time(us(5))
        assert "ms" in fmt_time(ms(5))

    def test_fmt_time_values(self):
        assert fmt_time(us(18.6)) == "18.600 us"

    def test_fmt_bandwidth(self):
        assert fmt_bandwidth(mbps(155)) == "155.00 Mb/s"
        assert fmt_bandwidth(gbps(1)) == "1.00 Gb/s"
        assert "kb/s" in fmt_bandwidth(5_000)
        assert "b/s" in fmt_bandwidth(10)
