"""Tests for the RPC layer over user-level messaging."""

import struct

import pytest

from repro.core.machine import MachineConfig
from repro.errors import ConfigError
from repro.msg.rpc import make_rpc_pair, _pack, _unpack
from repro.net import GIGABIT, Cluster
from repro.units import to_us


def echo_upper(payload: bytes) -> bytes:
    return payload.upper()


def make_pair(method="extshadow", handler=echo_upper):
    cluster = Cluster(2, link_spec=GIGABIT,
                      config=MachineConfig(method=method))
    ws0, ws1 = cluster.nodes
    client_proc = ws0.kernel.spawn("client")
    server_proc = ws1.kernel.spawn("server")
    if method != "kernel":
        ws0.kernel.enable_user_dma(client_proc)
        ws1.kernel.enable_user_dma(server_proc)
    client, server = make_rpc_pair(ws0, client_proc, ws1, server_proc,
                                   handler)
    return cluster, client, server


def test_wire_format_roundtrip():
    wire = _pack(42, b"payload")
    assert _unpack(wire) == (42, b"payload")


def test_runt_message_rejected():
    with pytest.raises(ConfigError):
        _unpack(b"abc")


def test_single_call():
    cluster, client, server = make_pair()
    assert client.call(b"hello", server) == b"HELLO"
    assert server.requests_served == 1
    assert client.calls_completed == 1


def test_sequential_calls_correlate():
    cluster, client, server = make_pair()
    for index in range(10):
        reply = client.call(f"req{index}".encode(), server)
        assert reply == f"REQ{index}".encode()


def test_computation_handler():
    def square(payload: bytes) -> bytes:
        (value,) = struct.unpack("<q", payload)
        return struct.pack("<q", value * value)

    cluster, client, server = make_pair(handler=square)
    reply = client.call(struct.pack("<q", 12), server)
    assert struct.unpack("<q", reply) == (144,)


def test_rpc_over_kernel_transport_works_but_slower():
    times = {}
    for method in ("extshadow", "kernel"):
        cluster, client, server = make_pair(method=method)
        client.call(b"warm", server)
        start = cluster.sim.now
        client.call(b"x", server)
        times[method] = to_us(cluster.sim.now - start)
    assert times["extshadow"] < times["kernel"]
    assert times["kernel"] - times["extshadow"] > 50  # 4+ syscalls


def test_empty_payload():
    cluster, client, server = make_pair()
    assert client.call(b"", server) == b""


def test_many_calls_through_small_rings():
    from repro.msg.ring import RingLayout

    cluster = Cluster(2, config=MachineConfig(method="extshadow"))
    ws0, ws1 = cluster.nodes
    client_proc = ws0.kernel.spawn("c")
    server_proc = ws1.kernel.spawn("s")
    ws0.kernel.enable_user_dma(client_proc)
    ws1.kernel.enable_user_dma(server_proc)
    client, server = make_rpc_pair(
        ws0, client_proc, ws1, server_proc, echo_upper,
        layout=RingLayout(n_slots=2, slot_size=128))
    for index in range(12):
        assert client.call(f"m{index}".encode(),
                           server) == f"M{index}".encode()
