"""Tests for the cluster barrier over user-level remote atomics."""

import pytest

from repro.core.machine import MachineConfig, Workstation
from repro.errors import ConfigError
from repro.msg import ClusterBarrier
from repro.net import Cluster


def make_barrier(n_nodes=3):
    cluster = Cluster(n_nodes,
                      config=MachineConfig(method="extshadow",
                                           atomic_mode="extshadow"))
    members = [(ws, ws.kernel.spawn(f"member{i}"))
               for i, ws in enumerate(cluster.nodes)]
    return cluster, ClusterBarrier(cluster.node(0), members)


def test_nobody_passes_until_all_arrive():
    cluster, barrier = make_barrier(3)
    first = barrier.arrive(0)
    second = barrier.arrive(1)
    assert not first.passed
    assert not second.passed
    third = barrier.arrive(2)
    assert first.passed and second.passed and third.passed


def test_last_arriver_varies():
    cluster, barrier = make_barrier(3)
    tickets = [barrier.arrive(2), barrier.arrive(0)]
    assert not any(t.passed for t in tickets)
    tickets.append(barrier.arrive(1))
    assert all(t.passed for t in tickets)


def test_barrier_is_reusable_sense_reversal():
    cluster, barrier = make_barrier(2)
    for episode in range(4):
        first = barrier.arrive(0)
        assert not first.passed
        second = barrier.arrive(1)
        assert first.passed and second.passed
    assert barrier.episodes == 4


def test_counter_resets_between_episodes():
    cluster, barrier = make_barrier(2)
    barrier.arrive(0)
    barrier.arrive(1)
    counter = barrier.home_ws.ram.read_word(barrier._counter_buf.paddr)
    assert counter == 0


def test_all_operations_user_level():
    """No syscalls executed during arrivals (setup aside)."""
    cluster, barrier = make_barrier(2)
    syscalls_before = sum(ws.cpu.stats.counter("syscalls").value
                          for ws in cluster.nodes)
    barrier.arrive(0)
    barrier.arrive(1)
    syscalls_after = sum(ws.cpu.stats.counter("syscalls").value
                         for ws in cluster.nodes)
    assert syscalls_after == syscalls_before


def test_needs_two_members():
    cluster = Cluster(1, config=MachineConfig(method="extshadow",
                                              atomic_mode="extshadow"))
    ws = cluster.node(0)
    with pytest.raises(ConfigError):
        ClusterBarrier(ws, [(ws, ws.kernel.spawn("solo"))])


def test_needs_atomic_units():
    ws = Workstation(MachineConfig(method="extshadow"))
    a = ws.kernel.spawn("a")
    b = ws.kernel.spawn("b")
    with pytest.raises(ConfigError):
        ClusterBarrier(ws, [(ws, a), (ws, b)])


def test_single_machine_barrier():
    """Both members on one workstation — atomics stay local."""
    ws = Workstation(MachineConfig(method="extshadow",
                                   atomic_mode="extshadow"))
    members = [(ws, ws.kernel.spawn("x")), (ws, ws.kernel.spawn("y"))]
    barrier = ClusterBarrier(ws, members)
    first = barrier.arrive(0)
    assert not first.passed
    second = barrier.arrive(1)
    assert first.passed and second.passed
