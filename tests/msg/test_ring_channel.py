"""Tests for the user-level message library (rings + channels)."""

import pytest

from repro.core.machine import MachineConfig, Workstation
from repro.errors import ConfigError
from repro.msg import MessageChannel, RingLayout
from repro.net import ATM_155, Cluster


def cluster_channel(layout=None, method="extshadow"):
    cluster = Cluster(2, link_spec=ATM_155,
                      config=MachineConfig(method=method))
    ws0, ws1 = cluster.nodes
    sender = ws0.kernel.spawn("sender")
    receiver = ws1.kernel.spawn("receiver")
    if method != "kernel":
        ws0.kernel.enable_user_dma(sender)
        ws1.kernel.enable_user_dma(receiver)
    channel = MessageChannel.create(ws0, sender, ws1, receiver,
                                    layout=layout)
    return cluster, channel


class TestRingLayout:
    def test_defaults_valid(self):
        layout = RingLayout()
        assert layout.max_payload == 1016
        assert layout.total_bytes % 8192 == 0

    def test_power_of_two_enforced(self):
        with pytest.raises(ConfigError):
            RingLayout(n_slots=6)

    def test_slot_size_validation(self):
        with pytest.raises(ConfigError):
            RingLayout(slot_size=8)
        with pytest.raises(ConfigError):
            RingLayout(slot_size=100)  # not a multiple of 8

    def test_slot_offsets_wrap(self):
        layout = RingLayout(n_slots=4, slot_size=256)
        assert layout.slot_offset(0) == layout.slot_offset(4)
        assert (layout.slot_offset(1) - layout.slot_offset(0)) == 256


class TestMessageDelivery:
    def test_messages_arrive_in_order_with_content(self):
        cluster, channel = cluster_channel()
        payloads = [f"message number {i}".encode() for i in range(5)]
        for payload in payloads:
            assert channel.send(payload)
        assert channel.drain() == payloads

    def test_recv_drives_the_simulation(self):
        cluster, channel = cluster_channel()
        channel.send(b"hello")
        assert channel.recv() == b"hello"

    def test_poll_without_messages_is_none(self):
        cluster, channel = cluster_channel()
        assert channel.poll() is None

    def test_binary_payloads_roundtrip(self):
        cluster, channel = cluster_channel()
        payload = bytes(range(256)) * 3
        channel.send(payload)
        assert channel.recv() == payload

    def test_oversized_payload_rejected(self):
        cluster, channel = cluster_channel(
            layout=RingLayout(n_slots=4, slot_size=128))
        with pytest.raises(ConfigError):
            channel.send(b"x" * 200)

    def test_empty_payload(self):
        cluster, channel = cluster_channel()
        channel.send(b"")
        assert channel.recv() == b""


class TestFlowControl:
    def test_ring_fills_and_rejects(self):
        cluster, channel = cluster_channel(
            layout=RingLayout(n_slots=4, slot_size=128))
        sent = 0
        while channel.send(b"x" * 64) and sent < 20:
            sent += 1
        assert sent == 4  # exactly the ring capacity
        assert channel.sender.full_rejections >= 1

    def test_credits_recover_after_drain(self):
        cluster, channel = cluster_channel(
            layout=RingLayout(n_slots=4, slot_size=128))
        while channel.send(b"y" * 32):
            pass
        assert channel.drain()  # consume everything
        cluster.run_until_quiet()  # let the credit DMAs land
        assert channel.sender.credits == 4
        assert channel.send(b"again")
        assert channel.recv() == b"again"

    def test_sustained_traffic_through_a_small_ring(self):
        cluster, channel = cluster_channel(
            layout=RingLayout(n_slots=2, slot_size=128))
        delivered = []
        for index in range(20):
            while not channel.send(f"m{index}".encode()):
                delivered.extend(channel.drain())
                cluster.run_until_quiet()
        delivered.extend(channel.drain())
        assert delivered == [f"m{i}".encode() for i in range(20)]

    def test_stats(self):
        cluster, channel = cluster_channel()
        channel.send(b"a")
        channel.send(b"b")
        channel.drain()
        stats = channel.stats
        assert stats["sent"] == 2
        assert stats["received"] == 2


class TestTransports:
    def test_local_loopback_channel(self):
        ws = Workstation(MachineConfig(method="keyed"))
        sender = ws.kernel.spawn("s")
        receiver = ws.kernel.spawn("r")
        ws.kernel.enable_user_dma(sender)
        ws.kernel.enable_user_dma(receiver)
        channel = MessageChannel.create(ws, sender, ws, receiver)
        channel.send(b"loopback")
        assert channel.recv() == b"loopback"

    def test_kernel_fallback_transport_still_works(self):
        cluster = Cluster(2, config=MachineConfig(method="kernel"))
        ws0, ws1 = cluster.nodes
        sender = ws0.kernel.spawn("s")
        receiver = ws1.kernel.spawn("r")
        channel = MessageChannel.create(ws0, sender, ws1, receiver)
        channel.send(b"via syscalls")
        assert channel.recv() == b"via syscalls"

    def test_user_level_send_is_much_cheaper_than_kernel(self):
        from repro.units import to_us

        costs = {}
        for method in ("kernel", "extshadow"):
            cluster, channel = cluster_channel(method=method)
            channel.send(b"warm")
            channel.recv()
            ws = channel.sender.ws
            start = ws.sim.now
            channel.send(b"x" * 64)
            costs[method] = to_us(ws.sim.now - start)
            channel.recv()
        assert costs["extshadow"] * 3 < costs["kernel"]
