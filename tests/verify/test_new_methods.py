"""Verification acceptance for the modern methods (IOMMU, capio).

Two claims, per the pipeline's "verified for free" promise:

* the naive and incremental checkers return byte-identical verdicts on
  every scenario involving the new methods — no checker-core change was
  needed to cover them;
* tampering (an unmapped IOVA, a wrong-epoch capability token, an
  out-of-bounds offset/size, a forged nonce) is *caught*: the engine
  refuses the transfer with nothing moved and reports DMA_FAILURE —
  never a silent success.
"""

from __future__ import annotations

import pytest

from repro.core.methods import make_protocol
from repro.hw.dma.protocols.capio import pack_cap_word
from repro.hw.dma.protocols.keyed import ARG_DESTINATION, ARG_SOURCE
from repro.hw.dma.recognizer import SetupOp
from repro.hw.dma.status import STATUS_FAILURE
from repro.hw.pagetable import PAGE_SIZE
from repro.verify.adversary import (
    pair_race_scenario,
    revoked_capability_scenario,
    stale_iotlb_scenario,
)
from repro.verify.incremental import check_scenario_incremental
from repro.verify.interleave import AccessSpec, ProtocolHarness
from repro.verify.model_check import check_scenario

SIZE = 256
NONCE = 0x123456


def scenario_builders():
    return [
        lambda: pair_race_scenario("iommu"),
        lambda: pair_race_scenario("capio"),
        lambda: stale_iotlb_scenario("iommu"),
        lambda: stale_iotlb_scenario("iommu_noshootdown"),
        lambda: revoked_capability_scenario("capio"),
        lambda: revoked_capability_scenario("capio_noepoch"),
    ]


class TestCheckersAgreeOnModernMethods:
    """Naive and incremental verdicts are byte-identical."""

    @pytest.mark.parametrize("build", scenario_builders(),
                             ids=lambda b: b().name)
    def test_verdicts_identical(self, build):
        naive = check_scenario(build())
        incremental = check_scenario_incremental(build())
        assert naive.safe == incremental.safe
        assert naive.total_interleavings == incremental.total_interleavings
        assert (naive.violating_interleavings
                == incremental.violating_interleavings)
        assert naive.examples == incremental.examples

    def test_weakened_variants_flagged_as_violations(self):
        """The attacks surface as property violations, not quiet data."""
        for build in (lambda: stale_iotlb_scenario("iommu_noshootdown"),
                      lambda: revoked_capability_scenario("capio_noepoch")):
            result = check_scenario(build())
            assert result.attack_found
            _order, violations = result.examples[0]
            assert "authorized-start" in {v.prop for v in violations}


def iommu_harness(maps):
    harness = ProtocolHarness(lambda: make_protocol("iommu"))
    for ctx_id, iova, phys, writable in maps:
        harness.install_setup(SetupOp("iommu-map",
                                      (ctx_id, iova, phys, writable)))
    return harness


def capio_harness(mints, revoke=()):
    harness = ProtocolHarness(lambda: make_protocol("capio"))
    for args in mints:
        harness.install_setup(SetupOp("cap-mint", args))
    for cap_id in revoke:
        harness.install_setup(SetupOp("cap-revoke", (cap_id,)))
    return harness


def run_iommu(harness, iova_src, iova_dst, size=SIZE):
    harness.deliver(AccessSpec(1, "store", iova_dst, size, ctx_id=0))
    return harness.deliver(AccessSpec(1, "load", iova_src, ctx_id=0,
                                      final=True))


def run_capio(harness, src_token, dst_token, src_off=0, dst_off=0,
              size=SIZE):
    harness.deliver(AccessSpec(1, "store", dst_off, dst_token, ctx_id=0))
    harness.deliver(AccessSpec(1, "store", src_off, src_token, ctx_id=0))
    harness.deliver(AccessSpec(1, "ctx-store", 0, size, ctx_id=0))
    return harness.deliver(AccessSpec(1, "ctx-load", 0, ctx_id=0,
                                      final=True))


class TestTamperedIommuInitiationsRefused:
    """Translation faults abort with nothing moved."""

    def test_unmapped_source_iova(self):
        harness = iommu_harness([(0, PAGE_SIZE, PAGE_SIZE, True)])
        status = run_iommu(harness, iova_src=3 * PAGE_SIZE,
                           iova_dst=PAGE_SIZE)
        assert status == STATUS_FAILURE
        assert harness.engine.initiations == []
        assert harness.protocol.translation_faults == 1

    def test_unmapped_destination_iova(self):
        harness = iommu_harness([(0, 0, 0, True)])
        status = run_iommu(harness, iova_src=0, iova_dst=3 * PAGE_SIZE)
        assert status == STATUS_FAILURE
        assert harness.engine.initiations == []

    def test_readonly_mapping_refuses_destination(self):
        harness = iommu_harness([(0, 0, 0, True),
                                 (0, PAGE_SIZE, PAGE_SIZE, False)])
        status = run_iommu(harness, iova_src=0, iova_dst=PAGE_SIZE)
        assert status == STATUS_FAILURE
        assert harness.engine.initiations == []

    def test_size_crossing_into_unmapped_page_faults(self):
        """A transfer outgrowing its mapped range aborts atomically."""
        harness = iommu_harness([(0, 0, 0, True),
                                 (0, PAGE_SIZE, PAGE_SIZE, True)])
        status = run_iommu(harness, iova_src=0, iova_dst=PAGE_SIZE,
                           size=2 * PAGE_SIZE)
        assert status == STATUS_FAILURE
        assert harness.engine.initiations == []

    def test_well_formed_initiation_starts(self):
        """The control: the same sequence with valid maps transfers."""
        harness = iommu_harness([(0, 0, 0, True),
                                 (0, PAGE_SIZE, PAGE_SIZE, True)])
        status = run_iommu(harness, iova_src=0, iova_dst=PAGE_SIZE)
        assert status != STATUS_FAILURE
        assert len(harness.engine.initiations) == 1
        record = harness.engine.initiations[0]
        assert (record.psrc, record.pdst, record.size) == (0, PAGE_SIZE,
                                                           SIZE)


class TestTamperedCapioInitiationsRefused:
    """Invalid tokens are dropped; fire-time re-validation backstops."""

    MINT = (1, 0, 1, 0, PAGE_SIZE, True, True, NONCE)

    def test_wrong_epoch_token_rejected(self):
        harness = capio_harness([self.MINT], revoke=(1,))
        stale_src = pack_cap_word(1, 0, NONCE, ARG_SOURCE)
        stale_dst = pack_cap_word(1, 0, NONCE, ARG_DESTINATION)
        status = run_capio(harness, stale_src, stale_dst)
        assert status == STATUS_FAILURE
        assert harness.engine.initiations == []
        assert harness.protocol.cap_rejections >= 2

    def test_forged_nonce_rejected(self):
        harness = capio_harness([self.MINT])
        forged = pack_cap_word(1, 0, NONCE ^ 1, ARG_DESTINATION)
        good_src = pack_cap_word(1, 0, NONCE, ARG_SOURCE)
        status = run_capio(harness, good_src, forged)
        assert status == STATUS_FAILURE
        assert harness.engine.initiations == []

    def test_out_of_bounds_offset_rejected_at_store_time(self):
        harness = capio_harness([self.MINT])
        src = pack_cap_word(1, 0, NONCE, ARG_SOURCE)
        dst = pack_cap_word(1, 0, NONCE, ARG_DESTINATION)
        status = run_capio(harness, src, dst, dst_off=PAGE_SIZE)
        assert status == STATUS_FAILURE
        assert harness.engine.initiations == []

    def test_size_outgrowing_limit_rejected_at_fire_time(self):
        """Both offsets validate alone; offset+size crosses the limit."""
        harness = capio_harness([self.MINT])
        src = pack_cap_word(1, 0, NONCE, ARG_SOURCE)
        dst = pack_cap_word(1, 0, NONCE, ARG_DESTINATION)
        status = run_capio(harness, src, dst, dst_off=PAGE_SIZE - 128)
        assert status == STATUS_FAILURE
        assert harness.engine.initiations == []
        assert harness.protocol.cap_rejections >= 1

    def test_revocation_between_latch_and_fire_wins(self):
        """§'re-validates both capabilities': a late revoke still aborts."""
        harness = capio_harness([self.MINT])
        src = pack_cap_word(1, 0, NONCE, ARG_SOURCE)
        dst = pack_cap_word(1, 0, NONCE, ARG_DESTINATION)
        harness.deliver(AccessSpec(1, "store", 128, dst, ctx_id=0))
        harness.deliver(AccessSpec(1, "store", 0, src, ctx_id=0))
        harness.deliver(AccessSpec(1, "ctx-store", 0, 64, ctx_id=0))
        harness.protocol.apply_setup(SetupOp("cap-revoke", (1,)))
        status = harness.deliver(AccessSpec(1, "ctx-load", 0, ctx_id=0,
                                            final=True))
        assert status == STATUS_FAILURE
        assert harness.engine.initiations == []

    def test_well_formed_initiation_starts(self):
        """The control: a valid token pair transfers within bounds."""
        harness = capio_harness([self.MINT])
        src = pack_cap_word(1, 0, NONCE, ARG_SOURCE)
        dst = pack_cap_word(1, 0, NONCE, ARG_DESTINATION)
        status = run_capio(harness, src, dst, src_off=0, dst_off=512,
                           size=128)
        assert status != STATUS_FAILURE
        assert len(harness.engine.initiations) == 1
        record = harness.engine.initiations[0]
        assert (record.psrc, record.pdst, record.size) == (0, 512, 128)
