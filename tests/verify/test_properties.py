"""Unit tests for the safety properties."""

from repro.hw.dma.engine import InitiationRecord
from repro.hw.dma.status import STATUS_FAILURE, STATUS_PENDING
from repro.verify.properties import (
    ProcessIntent,
    ReplayEvidence,
    Rights,
    check_authorized_start,
    check_single_issuer,
    check_truthful_status,
)

PAGE = 8192
REJECT = frozenset({STATUS_FAILURE, STATUS_PENDING})


def record(psrc, pdst, size=64, issuer=1, ok=True):
    return InitiationRecord(when=0, psrc=psrc, pdst=pdst, size=size,
                            issuer=issuer, via="x", ctx_id=None, ok=ok)


class TestRights:
    def test_write_implies_read(self):
        rights = Rights.over(write_pages=[0])
        assert rights.can_read(0, 64)
        assert rights.can_write(0, 64)

    def test_read_only(self):
        rights = Rights.over(read_pages=[0])
        assert rights.can_read(100, 8)
        assert not rights.can_write(100, 8)

    def test_multi_page_span(self):
        rights = Rights.over(write_pages=[0, PAGE])
        assert rights.can_write(PAGE - 8, 16)  # crosses the boundary
        assert not rights.can_write(PAGE, PAGE + 1)  # runs into page 2

    def test_zero_size_denied(self):
        assert not Rights.over(write_pages=[0]).can_write(0, 0)

    def test_unlisted_page_denied(self):
        rights = Rights.over(write_pages=[0])
        assert not rights.can_read(5 * PAGE, 8)


class TestAuthorizedStart:
    def rights(self):
        return {1: Rights.over(write_pages=[0, PAGE]),
                2: Rights.over(read_pages=[0], write_pages=[2 * PAGE])}

    def test_legitimate_start_passes(self):
        evidence = ReplayEvidence(records=[record(0, PAGE, issuer=1)])
        assert check_authorized_start(evidence, self.rights()) == []

    def test_unwritable_destination_flagged(self):
        evidence = ReplayEvidence(records=[record(0, PAGE, issuer=2)])
        violations = check_authorized_start(evidence, self.rights())
        assert len(violations) == 1
        assert violations[0].prop == "authorized-start"
        assert "unwritable" in violations[0].detail

    def test_unreadable_source_flagged(self):
        evidence = ReplayEvidence(
            records=[record(2 * PAGE, 2 * PAGE, issuer=1)])
        violations = check_authorized_start(evidence, self.rights())
        assert any("unreadable" in v.detail for v in violations)

    def test_failed_starts_ignored(self):
        evidence = ReplayEvidence(
            records=[record(5 * PAGE, 6 * PAGE, issuer=2, ok=False)])
        assert check_authorized_start(evidence, self.rights()) == []

    def test_unknown_issuer_flagged(self):
        evidence = ReplayEvidence(records=[record(0, PAGE, issuer=99)])
        violations = check_authorized_start(evidence, self.rights())
        assert "unknown pid" in violations[0].detail


class TestSingleIssuer:
    def test_uniform_contributors_pass(self):
        evidence = ReplayEvidence(contributors=[(1, 1, 1, 1, 1)])
        assert check_single_issuer(evidence) == []

    def test_mixed_contributors_flagged(self):
        evidence = ReplayEvidence(contributors=[(1, 2, 1, 1, 1)])
        violations = check_single_issuer(evidence)
        assert len(violations) == 1
        assert violations[0].prop == "single-issuer"

    def test_multiple_sequences_checked_independently(self):
        evidence = ReplayEvidence(
            contributors=[(1, 1, 1), (2, 2, 2), (1, 2, 3)])
        assert len(check_single_issuer(evidence)) == 1

    def rights(self):
        return {1: Rights.over(write_pages=[0, PAGE]),
                2: Rights.over(read_pages=[0],
                               write_pages=[2 * PAGE])}

    def test_benign_composition_excused_with_rights(self):
        """Mixed contributors, but the issuer needed no help: pid 2
        reads page 0 and writes page 2 — the started 0 -> 2*PAGE
        transfer borrows no authority."""
        evidence = ReplayEvidence(
            records=[record(0, 2 * PAGE, issuer=2)],
            contributors=[(2, 1, 2, 2, 2)])
        assert check_single_issuer(evidence, self.rights()) == []

    def test_borrowed_authority_still_flagged(self):
        """Fig. 6 shape: issuer 2 cannot write PAGE, so the mixed
        completion borrowed the victim's stores."""
        evidence = ReplayEvidence(
            records=[record(0, PAGE, issuer=2)],
            contributors=[(1, 1, 1, 2)])
        violations = check_single_issuer(evidence, self.rights())
        assert len(violations) == 1
        assert "pids [1, 2]" in violations[0].detail

    def test_failed_start_keeps_strict_reading(self):
        evidence = ReplayEvidence(
            records=[record(0, 2 * PAGE, issuer=2, ok=False)],
            contributors=[(2, 1, 2)])
        assert len(check_single_issuer(evidence, self.rights())) == 1

    def test_unknown_issuer_keeps_strict_reading(self):
        evidence = ReplayEvidence(
            records=[record(0, 2 * PAGE, issuer=9)],
            contributors=[(9, 1, 9)])
        assert len(check_single_issuer(evidence, self.rights())) == 1


class TestSingleIssuerAuthority:
    """Regression: credential-bearing completions carry the *minting*
    process's authority (``evidence.authority``), not the delivering
    access's.  A capio transfer whose tokens were all minted for pid 1
    is pid 1's transfer even when pid 2's accesses delivered them."""

    def rights(self):
        return {1: Rights.over(write_pages=[0, PAGE]),
                2: Rights.over(read_pages=[0],
                               write_pages=[2 * PAGE])}

    def mixed(self, granter, issuer=2, pdst=PAGE):
        """Issuer 2 cannot write PAGE: only the granter can excuse it."""
        return ReplayEvidence(
            records=[record(0, pdst, issuer=issuer)],
            contributors=[(1, 2, 2, 2)],
            authority=[granter])

    def test_credential_holder_with_rights_excuses(self):
        evidence = self.mixed(granter=1)
        assert check_single_issuer(evidence, self.rights()) == []

    def test_credential_holder_without_rights_flagged(self):
        """The granter's own rights must cover the transfer — a pid-2
        credential does not launder a write into the victim's page."""
        evidence = self.mixed(granter=2)
        violations = check_single_issuer(evidence, self.rights())
        assert len(violations) == 1
        assert violations[0].prop == "single-issuer"

    def test_no_single_credential_holder_flagged(self):
        """Authority None (src/dst caps minted for different owners)
        offers no excuse."""
        evidence = self.mixed(granter=None)
        assert len(check_single_issuer(evidence, self.rights())) == 1

    def test_missing_authority_entry_keeps_strict_reading(self):
        """Completions past the authority list (non-credential
        protocols) fall back to the issuer-only excuse."""
        evidence = ReplayEvidence(
            records=[record(0, PAGE, issuer=2)],
            contributors=[(1, 2, 2, 2)],
            authority=[])
        assert len(check_single_issuer(evidence, self.rights())) == 1

    def test_without_rights_authority_cannot_excuse(self):
        """Bare-evidence callers keep the strict reading."""
        evidence = self.mixed(granter=1)
        assert len(check_single_issuer(evidence)) == 1

    def test_issuer_excuse_still_wins_first(self):
        """An issuer who needed no help is excused regardless of the
        credential column."""
        evidence = ReplayEvidence(
            records=[record(0, 2 * PAGE, issuer=2)],
            contributors=[(2, 1, 2, 2)],
            authority=[None])
        assert check_single_issuer(evidence, self.rights()) == []


class TestTruthfulStatus:
    def intent(self):
        return ProcessIntent(1, 0, PAGE, 64)

    def test_started_and_reported_ok(self):
        evidence = ReplayEvidence(records=[record(0, PAGE)],
                                  final_status={1: 64})
        assert check_truthful_status(evidence, [self.intent()],
                                     REJECT) == []

    def test_not_started_and_reported_failure(self):
        evidence = ReplayEvidence(final_status={1: STATUS_FAILURE})
        assert check_truthful_status(evidence, [self.intent()],
                                     REJECT) == []

    def test_pending_counts_as_rejection(self):
        evidence = ReplayEvidence(final_status={1: STATUS_PENDING})
        assert check_truthful_status(evidence, [self.intent()],
                                     REJECT) == []

    def test_started_but_told_failure_flagged(self):
        """The Fig. 6 harm: the victim retries a DMA that already ran."""
        evidence = ReplayEvidence(records=[record(0, PAGE, issuer=2)],
                                  final_status={1: STATUS_FAILURE})
        violations = check_truthful_status(evidence, [self.intent()],
                                           REJECT)
        assert len(violations) == 1
        assert "told FAILURE" in violations[0].detail

    def test_phantom_success_flagged(self):
        evidence = ReplayEvidence(final_status={1: 64})
        violations = check_truthful_status(evidence, [self.intent()],
                                           REJECT)
        assert "never" in violations[0].detail

    def test_process_without_final_status_skipped(self):
        evidence = ReplayEvidence(records=[record(0, PAGE)])
        assert check_truthful_status(evidence, [self.intent()],
                                     REJECT) == []

    def test_intent_matching_is_exact(self):
        other = ProcessIntent(1, 0, PAGE, 128)  # different size
        evidence = ReplayEvidence(records=[record(0, PAGE, size=64)],
                                  final_status={1: STATUS_FAILURE})
        assert check_truthful_status(evidence, [other], REJECT) == []
