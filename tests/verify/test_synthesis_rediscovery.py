"""Rediscovery acceptance suite: the hunt re-finds the paper's attacks.

The bar for the synthesis subsystem (repro.verify.synth): with a fixed
seed and a bounded budget, and **no reference to the hand-written
adversary streams**, the guided search must

* re-find the Fig. 5 attack on the 3-instruction variant and the Fig. 6
  attack on the 4-instruction variant;
* re-find the stale-IOTLB attack on ``iommu_noshootdown`` and the
  revoked-capability attack on ``capio_noepoch`` — the deliberately-
  weakened modern variants — and shrink each to the committed
  golden-core fixture (tests/verify/fixtures/);
* shrink each counterexample to a 1-minimal core that matches the
  figure's printed interleaving (the same core the shrinker extracts
  from the printed order itself);
* find **nothing** against the hardened methods (shrimp1, keyed,
  extshadow, repeated5, iommu, capio) on the same budget.
"""

import json
from pathlib import Path

import pytest

from repro.verify.adversary import fig5_scenario, fig6_scenario
from repro.verify.faulted import FAULT_HARDENED_METHODS
from repro.verify.synth import (
    HuntConfig,
    hunt_method,
    is_one_minimal,
    run_hunt,
    shrink_counterexample,
)
from repro.verify.synth.search import ADDR_C, STALE_IOVA

#: The acceptance budget: small enough to keep tier-1 fast, and an
#: order of magnitude above what the guided search actually needs
#: (both attacks fall inside the first ten candidates).
CONFIG = HuntConfig(seed=7, max_candidates=150, max_stream_len=4)

#: The modern weakened variants search a denser token alphabet, so the
#: revoked-capability attack (an exact 4-access sequence over 5 symbols)
#: needs a longer leash; still well under a second.
MODERN_CONFIG = HuntConfig(seed=7, max_candidates=250, max_stream_len=4)

FIXTURES = Path(__file__).parent / "fixtures"


@pytest.fixture(scope="module")
def hunts():
    """One hunt over every registered hunt method, shared module-wide."""
    return {r.method: r for r in run_hunt(config=CONFIG)}


@pytest.fixture(scope="module")
def capio_noepoch_hunt():
    """The capio_noepoch hunt under the longer modern budget."""
    return hunt_method("capio_noepoch", MODERN_CONFIG)


def _core_as_fixture_dict(shrunk):
    """A shrunk core rendered the way the golden fixtures store it."""
    core = shrunk.to_dict()
    core.pop("replays", None)
    core.pop("original_length", None)
    return core


def _subsequence(needle, haystack):
    it = iter(haystack)
    return all(any(a == b for b in it) for a in needle)


def _same_shadow_access(a, b):
    """Same engine-visible access (the ``final`` marker is bookkeeping)."""
    return (a.pid, a.op, a.paddr, a.ctx_id) == (b.pid, b.op, b.paddr,
                                                b.ctx_id)


class TestRediscovery:
    """The broken variants fall to the synthesizer, from scratch."""

    def test_fig5_attack_refound(self, hunts):
        report = hunts["repeated3"]
        assert report.found, report.summary()
        scenario, _ = fig5_scenario()
        figure_props = {"authorized-start"}
        assert figure_props & set(report.props)

    def test_fig6_attack_refound(self, hunts):
        report = hunts["repeated4"]
        assert report.found, report.summary()
        # Fig. 6's printed interleaving violates all three properties;
        # any of them certifies the rediscovery.
        assert set(report.props) & {"authorized-start", "single-issuer",
                                    "truthful-status"}

    def test_rediscovery_is_fast(self, hunts):
        """Both attacks fall well inside the bounded budget."""
        for method in ("repeated3", "repeated4"):
            assert hunts[method].candidates < CONFIG.max_candidates / 2

    def test_counterexamples_are_concrete_violations(self, hunts):
        from repro.verify.model_check import replay_interleaving
        from repro.verify.synth.search import (
            adversary_profile_for,
            compose_scenario,
            _victim_setup,
        )

        for method in ("repeated3", "repeated4"):
            report = hunts[method]
            victim, keys = _victim_setup(method)
            scenario = compose_scenario(
                method, victim, keys, adversary_profile_for(method),
                report.adversary_stream, "replayed")
            violations = replay_interleaving(scenario,
                                             report.counterexample)
            assert {v.prop for v in violations} == set(report.props)


class TestShrunkCoresMatchThePaper:
    """The shrunk cores reproduce the figures' printed interleavings."""

    def test_fig5_printed_order_shrinks_to_its_core(self):
        scenario, printed = fig5_scenario()
        core = shrink_counterexample(scenario, printed)
        assert len(core) == 3
        assert _subsequence(core.interleaving, printed)
        assert is_one_minimal(scenario, core.interleaving, core.prop)
        # The printed attack's essence: the adversary's repeated load
        # around the victim's store of its private page.
        pids = [a.pid for a in core.interleaving]
        ops = [a.op for a in core.interleaving]
        assert ops == ["load", "store", "load"]
        assert pids == [2, 1, 2]
        assert _same_shadow_access(core.interleaving[0],
                                   core.interleaving[2])

    def test_fig6_printed_order_shrinks_to_its_core(self):
        scenario, printed = fig6_scenario()
        core = shrink_counterexample(scenario, printed)
        # Printed order minus the victim's final load: the attack has
        # already happened by then.
        assert list(core.interleaving) == printed[:4]
        assert is_one_minimal(scenario, core.interleaving, core.prop)

    def test_refound_fig5_core_matches_printed_shape(self, hunts):
        shrunk = hunts["repeated3"].shrunk
        assert shrunk is not None
        assert len(shrunk) == 3
        assert [a.op for a in shrunk.interleaving] == ["load", "store",
                                                       "load"]
        # Repeated-address discipline: the pattern-completing load
        # repeats the first; the middle store comes from the other pid.
        assert _same_shadow_access(shrunk.interleaving[0],
                                   shrunk.interleaving[2])
        assert (shrunk.interleaving[1].pid
                != shrunk.interleaving[0].pid)

    def test_refound_fig6_core_matches_printed_shape(self, hunts):
        shrunk = hunts["repeated4"].shrunk
        assert shrunk is not None
        assert len(shrunk) == 4
        assert [a.op for a in shrunk.interleaving] == ["store", "load",
                                                       "store", "load"]
        assert len({a.pid for a in shrunk.interleaving}) == 2

    def test_refound_cores_are_one_minimal(self, hunts):
        from repro.verify.synth.search import (
            adversary_profile_for,
            compose_scenario,
            _victim_setup,
        )

        for method in ("repeated3", "repeated4"):
            report = hunts[method]
            victim, keys = _victim_setup(method)
            scenario = compose_scenario(
                method, victim, keys, adversary_profile_for(method),
                report.adversary_stream, "minimality")
            assert is_one_minimal(scenario, report.shrunk.interleaving,
                                  report.shrunk.prop)


class TestModernWeakenedVariantsFall:
    """The weakened IOMMU/capio variants fall to the same synthesizer.

    Nothing method-specific was taught to the search beyond the
    adversary's legitimate vocabulary (its own IOVAs / tokens plus the
    revoked grant it once held); rediscovering the stale-IOTLB and
    revoked-capability attacks is the acceptance bar for the modern
    methods' verification story.
    """

    def test_stale_iotlb_attack_refound(self, hunts):
        report = hunts["iommu_noshootdown"]
        assert report.found, report.summary()
        assert "authorized-start" in report.props

    def test_stale_iotlb_core_matches_fixture(self, hunts):
        shrunk = hunts["iommu_noshootdown"].shrunk
        assert shrunk is not None
        golden = json.loads(
            (FIXTURES / "stale_iotlb_core.json").read_text())
        assert _core_as_fixture_dict(shrunk) == golden["core"]
        assert hunts["iommu_noshootdown"].seed == golden["seed"]

    def test_stale_iotlb_core_shape(self, hunts):
        """Two adversary accesses: store via the revoked IOVA, fire."""
        shrunk = hunts["iommu_noshootdown"].shrunk
        assert len(shrunk) == 2
        store, load = shrunk.interleaving
        assert (store.op, store.paddr, store.pid) == ("store", STALE_IOVA, 2)
        assert (load.op, load.paddr, load.pid) == ("load", ADDR_C, 2)

    def test_revoked_capability_attack_refound(self, capio_noepoch_hunt):
        report = capio_noepoch_hunt
        assert report.found, report.summary()
        assert "authorized-start" in report.props

    def test_revoked_capability_core_matches_fixture(
            self, capio_noepoch_hunt):
        shrunk = capio_noepoch_hunt.shrunk
        assert shrunk is not None
        golden = json.loads(
            (FIXTURES / "revoked_capability_core.json").read_text())
        assert _core_as_fixture_dict(shrunk) == golden["core"]

    def test_revoked_capability_core_shape(self, capio_noepoch_hunt):
        """Four adversary accesses: two token stores, size, fire."""
        shrunk = capio_noepoch_hunt.shrunk
        assert len(shrunk) == 4
        ops = sorted(a.op for a in shrunk.interleaving)
        assert ops == ["ctx-load", "ctx-store", "store", "store"]
        assert {a.pid for a in shrunk.interleaving} == {2}

    def test_modern_cores_are_one_minimal(self, hunts, capio_noepoch_hunt):
        from repro.verify.synth.search import (
            adversary_profile_for,
            compose_scenario,
            _victim_setup,
        )

        for report in (hunts["iommu_noshootdown"], capio_noepoch_hunt):
            method = report.method
            victim, keys = _victim_setup(method)
            scenario = compose_scenario(
                method, victim, keys, adversary_profile_for(method),
                report.adversary_stream, "minimality")
            assert is_one_minimal(scenario, report.shrunk.interleaving,
                                  report.shrunk.prop)


class TestHardenedMethodsSurvive:
    """Zero counterexamples against the paper's safe methods."""

    @pytest.mark.parametrize("method", FAULT_HARDENED_METHODS)
    def test_no_counterexample_within_budget(self, hunts, method):
        report = hunts[method]
        assert not report.found, report.summary()
        assert report.candidates == CONFIG.max_candidates
        assert report.interleavings > 0

    def test_shrimp1_small_space_exhausts(self):
        """With DFS only, the whole <=2-access space is covered."""
        config = HuntConfig(seed=1, max_candidates=100,
                            max_stream_len=2, explore_ratio=0.0)
        report = hunt_method("shrimp1", config)
        assert not report.found
        assert report.exhausted
        # Vocabulary of 7 (2 stores, 3 loads — write implies read —
        # and 2 exchanges): 7 single-access + 49 two-access streams.
        assert report.candidates == 7 + 49


class TestDeterminism:
    """One seed, one outcome — byte for byte."""

    def test_same_seed_same_report(self):
        config = HuntConfig(seed=21, max_candidates=40)
        first = [r.to_dict() for r in run_hunt(("repeated3", "shrimp1"),
                                               config)]
        second = [r.to_dict() for r in run_hunt(("repeated3", "shrimp1"),
                                                config)]
        for a, b in zip(first, second):
            a.pop("elapsed_s")
            b.pop("elapsed_s")
            if "shrunk" in a:
                a["shrunk"].pop("replays")
                b["shrunk"].pop("replays")
        assert first == second

    def test_different_seed_may_walk_differently(self):
        """Seeds actually steer the search (not a constant path)."""
        reports = {}
        for seed in (3, 4, 5, 6):
            config = HuntConfig(seed=seed, max_candidates=60)
            reports[seed] = hunt_method("repeated3", config)
        assert all(r.found for r in reports.values())
        assert len({r.candidates for r in reports.values()}) > 1
