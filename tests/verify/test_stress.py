"""Whole-machine stress tests: the kernel-modification ablation.

SHRIMP-2 and FLASH corrupt transfers on an unmodified kernel under heavy
preemption; with their hooks installed — or with any of the paper's
methods on a *stock* kernel — every audit comes back clean.
"""

import pytest

from repro.verify.stress import run_stress


class TestPaperMethodsAreClean:
    @pytest.mark.parametrize("method", ["keyed", "extshadow"])
    def test_clean_under_heavy_preemption(self, method):
        report = run_stress(method, n_processes=4, dmas_each=10,
                            preempt_p=0.5, with_hooks=True)
        assert report.clean, vars(report)
        assert report.started == report.attempts
        assert report.reported_ok == report.attempts

    def test_repeated5_with_retry_completes_cleanly(self):
        report = run_stress("repeated5", n_processes=3, dmas_each=6,
                            preempt_p=0.3, with_retry=True)
        assert report.clean
        assert report.started >= report.attempts  # retries may re-start

    def test_repeated5_without_retry_may_fail_but_never_corrupts(self):
        report = run_stress("repeated5", n_processes=3, dmas_each=10,
                            preempt_p=0.5, with_retry=False)
        assert report.corrupted == 0
        assert report.misreported == 0


class TestBaselinesNeedTheirHooks:
    def test_shrimp2_with_hook_is_clean(self):
        report = run_stress("shrimp2", n_processes=4, dmas_each=20,
                            preempt_p=0.5, with_hooks=True)
        assert report.corrupted == 0
        assert report.misreported == 0

    def test_shrimp2_without_hook_corrupts(self):
        report = run_stress("shrimp2", n_processes=4, dmas_each=20,
                            preempt_p=0.5, with_hooks=False)
        assert report.corrupted > 0
        assert not report.clean

    def test_flash_with_hook_is_clean(self):
        report = run_stress("flash", n_processes=4, dmas_each=20,
                            preempt_p=0.5, with_hooks=True)
        assert report.corrupted == 0

    def test_flash_without_hook_corrupts(self):
        report = run_stress("flash", n_processes=4, dmas_each=20,
                            preempt_p=0.5, with_hooks=False)
        assert report.corrupted > 0

    def test_corruption_grows_with_preemption(self):
        low = run_stress("shrimp2", n_processes=4, dmas_each=20,
                         preempt_p=0.05, with_hooks=False)
        high = run_stress("shrimp2", n_processes=4, dmas_each=20,
                          preempt_p=0.6, with_hooks=False)
        assert high.corrupted >= low.corrupted


class TestReportMechanics:
    def test_deterministic_given_seed(self):
        a = run_stress("shrimp2", preempt_p=0.5, with_hooks=False,
                       seed=3)
        b = run_stress("shrimp2", preempt_p=0.5, with_hooks=False,
                       seed=3)
        assert vars(a) == vars(b)

    def test_different_seeds_vary(self):
        reports = {run_stress("shrimp2", preempt_p=0.5,
                              with_hooks=False,
                              seed=s).context_switches
                   for s in range(4)}
        assert len(reports) > 1

    def test_attempt_accounting(self):
        report = run_stress("keyed", n_processes=2, dmas_each=5,
                            preempt_p=0.1)
        assert report.attempts == 10
        assert report.method == "keyed"
        assert report.hooks_installed

    def test_corrupt_pairs_recorded_one_per_corruption(self):
        report = run_stress("shrimp2", n_processes=4, dmas_each=20,
                            preempt_p=0.5, with_hooks=False)
        assert len(report.corrupt_pairs) == report.corrupted
        assert report.corrupted > 0

    def test_clean_property_definition(self):
        from repro.verify.stress import StressReport

        report = StressReport(method="keyed", hooks_installed=True)
        assert report.clean
        for attr in ("corrupted", "misreported", "data_errors"):
            dirty = StressReport(method="keyed", hooks_installed=True,
                                 **{attr: 1})
            assert not dirty.clean


class TestStressHelpers:
    """The audit helpers, exercised directly on their edge branches."""

    def test_intent_of_orders_by_source_and_bounds(self):
        from repro.verify.stress import _intent_of

        intents = {(0x2000, 0x3000, 64), (0x1000, 0x3000, 64)}
        assert _intent_of(intents, 0) == (0x1000, 0x3000, 64)
        assert _intent_of(intents, 1) == (0x2000, 0x3000, 64)
        assert _intent_of(intents, 2) is None

    def test_unique_labels_renames_every_branch_kind(self):
        from repro.hw.isa import Beq, Bne, Halt, Jump, Label
        from repro.verify.stress import _unique_labels

        renamed = _unique_labels(
            [Label("retry"), Beq("a", "b", "retry"),
             Bne("a", "b", "retry"), Jump("retry"), Halt()], 3)
        assert renamed[0].name == "retry_3"
        assert renamed[1].target == "retry_3"
        assert renamed[2].target == "retry_3"
        assert renamed[3].target == "retry_3"
        assert isinstance(renamed[4], Halt)

    def test_statuses_of_unknown_pid_is_empty(self):
        from repro.verify.stress import _statuses_of

        assert _statuses_of(None, [(1, 0, 2)], pid=99) == []

    def test_single_process_runs_see_no_interference(self):
        report = run_stress("shrimp2", n_processes=1, dmas_each=4,
                            preempt_p=0.4, with_hooks=False)
        assert report.corrupted == 0
        assert report.clean
