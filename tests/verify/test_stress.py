"""Whole-machine stress tests: the kernel-modification ablation.

SHRIMP-2 and FLASH corrupt transfers on an unmodified kernel under heavy
preemption; with their hooks installed — or with any of the paper's
methods on a *stock* kernel — every audit comes back clean.
"""

import pytest

from repro.verify.stress import run_stress


class TestPaperMethodsAreClean:
    @pytest.mark.parametrize("method", ["keyed", "extshadow"])
    def test_clean_under_heavy_preemption(self, method):
        report = run_stress(method, n_processes=4, dmas_each=10,
                            preempt_p=0.5, with_hooks=True)
        assert report.clean, vars(report)
        assert report.started == report.attempts
        assert report.reported_ok == report.attempts

    def test_repeated5_with_retry_completes_cleanly(self):
        report = run_stress("repeated5", n_processes=3, dmas_each=6,
                            preempt_p=0.3, with_retry=True)
        assert report.clean
        assert report.started >= report.attempts  # retries may re-start

    def test_repeated5_without_retry_may_fail_but_never_corrupts(self):
        report = run_stress("repeated5", n_processes=3, dmas_each=10,
                            preempt_p=0.5, with_retry=False)
        assert report.corrupted == 0
        assert report.misreported == 0


class TestBaselinesNeedTheirHooks:
    def test_shrimp2_with_hook_is_clean(self):
        report = run_stress("shrimp2", n_processes=4, dmas_each=20,
                            preempt_p=0.5, with_hooks=True)
        assert report.corrupted == 0
        assert report.misreported == 0

    def test_shrimp2_without_hook_corrupts(self):
        report = run_stress("shrimp2", n_processes=4, dmas_each=20,
                            preempt_p=0.5, with_hooks=False)
        assert report.corrupted > 0
        assert not report.clean

    def test_flash_with_hook_is_clean(self):
        report = run_stress("flash", n_processes=4, dmas_each=20,
                            preempt_p=0.5, with_hooks=True)
        assert report.corrupted == 0

    def test_flash_without_hook_corrupts(self):
        report = run_stress("flash", n_processes=4, dmas_each=20,
                            preempt_p=0.5, with_hooks=False)
        assert report.corrupted > 0

    def test_corruption_grows_with_preemption(self):
        low = run_stress("shrimp2", n_processes=4, dmas_each=20,
                         preempt_p=0.05, with_hooks=False)
        high = run_stress("shrimp2", n_processes=4, dmas_each=20,
                          preempt_p=0.6, with_hooks=False)
        assert high.corrupted >= low.corrupted


class TestReportMechanics:
    def test_deterministic_given_seed(self):
        a = run_stress("shrimp2", preempt_p=0.5, with_hooks=False,
                       seed=3)
        b = run_stress("shrimp2", preempt_p=0.5, with_hooks=False,
                       seed=3)
        assert vars(a) == vars(b)

    def test_different_seeds_vary(self):
        reports = {run_stress("shrimp2", preempt_p=0.5,
                              with_hooks=False,
                              seed=s).context_switches
                   for s in range(4)}
        assert len(reports) > 1

    def test_attempt_accounting(self):
        report = run_stress("keyed", n_processes=2, dmas_each=5,
                            preempt_p=0.1)
        assert report.attempts == 10
        assert report.method == "keyed"
        assert report.hooks_installed
