"""Differential tests: incremental checker vs the naive replay oracle.

The contract is strict: :func:`check_scenario_incremental` must return a
:class:`~repro.verify.model_check.CheckResult` that compares **equal** —
counts, per-property tallies, and retained examples, in order — to what
the naive oracle returns, on every built-in scenario, with the
transposition table on or off.
"""

from __future__ import annotations

import pytest

from repro.errors import VerificationError
from repro.verify.adversary import builtin_scenarios, fig8_scenario
from repro.verify.incremental import CheckStats, check_scenario_incremental
from repro.verify.model_check import check_scenario

SCENARIOS = builtin_scenarios()
SCENARIO_IDS = [s.name for s in SCENARIOS]


@pytest.mark.parametrize("scenario", SCENARIOS, ids=SCENARIO_IDS)
def test_differential_with_transposition(scenario):
    assert check_scenario_incremental(scenario) == check_scenario(scenario)


@pytest.mark.parametrize("scenario", SCENARIOS, ids=SCENARIO_IDS)
def test_differential_without_transposition(scenario):
    assert (check_scenario_incremental(scenario, use_transposition=False)
            == check_scenario(scenario))


def test_examples_match_naive_order_and_cap():
    """Retained examples are the naive oracle's, in its order."""
    scenario = builtin_scenarios()[0]  # fig5: has violations
    for cap in (0, 1, 3, 100):
        naive = check_scenario(scenario, max_examples=cap)
        inc = check_scenario_incremental(scenario, max_examples=cap)
        assert inc.examples == naive.examples
        assert len(inc.examples) <= cap


def test_stats_show_prefix_sharing():
    """The tree walk delivers far fewer accesses than naive replay."""
    stats = CheckStats()
    result = check_scenario_incremental(fig8_scenario(2), stats=stats)
    assert stats.leaves == result.total_interleavings == 9240
    assert stats.naive_accesses == 9240 * 11
    assert stats.accesses_delivered < stats.naive_accesses // 10
    assert stats.accesses_saved == (stats.naive_accesses
                                    - stats.accesses_delivered)
    assert 0.0 < stats.delivery_ratio < 0.1
    assert stats.snapshots == stats.restores


def test_transposition_reduces_work():
    with_table = CheckStats()
    without_table = CheckStats()
    scenario = fig8_scenario(2)
    check_scenario_incremental(scenario, stats=with_table)
    check_scenario_incremental(scenario, use_transposition=False,
                               stats=without_table)
    assert with_table.transposition_hits > 0
    assert with_table.accesses_delivered < without_table.accesses_delivered
    assert without_table.transposition_hits == 0
    assert with_table.leaves == without_table.leaves


def test_progress_callback_fires_and_reaches_total():
    seen = []
    result = check_scenario_incremental(
        fig8_scenario(2), progress=seen.append, progress_every=500)
    assert seen, "progress callback never fired"
    assert seen == sorted(seen)
    assert seen[-1] <= result.total_interleavings == 9240


def test_max_interleavings_cap_raises():
    with pytest.raises(VerificationError):
        check_scenario_incremental(fig8_scenario(2), max_interleavings=100)


def test_prefix_choices_partition_the_tree():
    """Forcing each top-level branch partitions counts exactly."""
    scenario = fig8_scenario(2)
    whole = check_scenario_incremental(scenario)
    branches = [
        check_scenario_incremental(scenario, prefix_choices=[index])
        for index in range(len(scenario.streams))
    ]
    assert (sum(b.total_interleavings for b in branches)
            == whole.total_interleavings)
    assert (sum(b.violating_interleavings for b in branches)
            == whole.violating_interleavings)
    # Branch examples are complete interleavings starting with the
    # forced access.
    for index, branch in enumerate(branches):
        for order, _violations in branch.examples:
            assert order[0] == scenario.streams[index][0]


def test_prefix_choices_validation():
    scenario = fig8_scenario(1)
    with pytest.raises(VerificationError):
        check_scenario_incremental(scenario, prefix_choices=[99])
    n_victim = len(scenario.streams[0])
    with pytest.raises(VerificationError):
        check_scenario_incremental(scenario,
                                   prefix_choices=[0] * (n_victim + 1))
