"""Property-based tests for the counterexample shrinker (hypothesis).

The contract of :func:`repro.verify.synth.shrink.shrink_counterexample`,
checked over randomly synthesized violating interleavings:

* the shrunk core still violates the **same property** the original
  interleaving did;
* the core is **1-minimal** — removing any single access loses that
  property;
* shrinking is a pure function of its inputs — same scenario and order
  in, byte-identical core and verdict out.

All runs are derandomized so CI is deterministic.
"""

import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.errors import VerificationError
from repro.verify.incremental import check_scenario_incremental
from repro.verify.synth import is_one_minimal, shrink_counterexample
from repro.verify.synth.generator import access_vocabulary
from repro.verify.synth.search import (
    _victim_setup,
    adversary_profile_for,
    compose_scenario,
)
from repro.verify.synth.shrink import pick_target_prop, violated_props

SETTINGS = settings(max_examples=20, deadline=None, derandomize=True,
                    suppress_health_check=[HealthCheck.too_slow,
                                           HealthCheck.filter_too_much])


def _violating_order(method, indices):
    """Compose the scenario and find its first violating interleaving.

    Returns (scenario, order) or None when the synthesized adversary
    stream happens to be harmless (hypothesis ``assume`` filters those).
    """
    victim, keys = _victim_setup(method)
    profile = adversary_profile_for(method)
    vocab = access_vocabulary(profile)
    adversary = [vocab[i % len(vocab)] for i in indices]
    scenario = compose_scenario(method, victim, keys, profile,
                                adversary, tag="prop")
    result = check_scenario_incremental(scenario, max_examples=1,
                                        max_interleavings=100_000)
    if not result.attack_found:
        return None
    return scenario, result.examples[0][0]


@given(method=st.sampled_from(["repeated3", "repeated4"]),
       indices=st.lists(st.integers(min_value=0, max_value=30),
                        min_size=1, max_size=4))
@SETTINGS
def test_shrunk_core_still_violates_same_property(method, indices):
    found = _violating_order(method, indices)
    assume(found is not None)
    scenario, order = found
    core = shrink_counterexample(scenario, order)
    assert core.prop in violated_props(scenario, order)
    assert core.prop in violated_props(scenario, core.interleaving)
    assert len(core) <= len(order)


@given(method=st.sampled_from(["repeated3", "repeated4"]),
       indices=st.lists(st.integers(min_value=0, max_value=30),
                        min_size=1, max_size=4))
@SETTINGS
def test_shrunk_core_is_one_minimal(method, indices):
    found = _violating_order(method, indices)
    assume(found is not None)
    scenario, order = found
    core = shrink_counterexample(scenario, order)
    assert is_one_minimal(scenario, core.interleaving, core.prop)


@given(method=st.sampled_from(["repeated3", "repeated4"]),
       indices=st.lists(st.integers(min_value=0, max_value=30),
                        min_size=1, max_size=4))
@SETTINGS
def test_shrinking_is_deterministic(method, indices):
    found = _violating_order(method, indices)
    assume(found is not None)
    scenario, order = found
    first = shrink_counterexample(scenario, order)
    second = shrink_counterexample(scenario, order)
    assert first.interleaving == second.interleaving
    assert first.prop == second.prop
    assert first.props == second.props
    assert first.replays == second.replays
    assert first.to_dict() == second.to_dict()


class TestShrinkErrors:
    """The shrinker refuses non-violating input instead of faking it."""

    def test_non_violating_order_rejected(self):
        from repro.verify.adversary import fig8_scenario

        scenario = fig8_scenario(1)
        order = [a for stream in scenario.streams for a in stream]
        with pytest.raises(VerificationError):
            shrink_counterexample(scenario, order)

    def test_wrong_target_property_rejected(self):
        from repro.verify.adversary import fig5_scenario

        scenario, printed = fig5_scenario()
        with pytest.raises(VerificationError):
            shrink_counterexample(scenario, printed,
                                  prop="no-such-property")

    def test_pick_target_prefers_protection_properties(self):
        assert pick_target_prop(frozenset({"truthful-status",
                                           "authorized-start"})) == (
            "authorized-start")
        with pytest.raises(VerificationError):
            pick_target_prop(frozenset())
