"""k-fault campaigns: combinations of faults on the hardened methods.

Tier-1 keeps the exhaustive k=2 sweeps to the small-stream methods
(shrimp1, extshadow); the full hardened-method k=2 soak runs in the
scheduled CI job via ``repro hunt --k-faults 2``.
"""

import pytest

from repro.errors import VerificationError
from repro.faults.plan import BITFLIP, DROP, REORDER
from repro.verify.adversary import pair_race_scenario
from repro.verify.faulted import (
    FaultSpec,
    apply_faults,
    enumerate_single_faults,
)
from repro.verify.synth import (
    apply_fault_combo,
    run_k_fault_campaign,
    verify_method_under_k_faults,
)
from repro.verify.synth.kfault import _combination_count


def race():
    scenario = pair_race_scenario("extshadow")
    scenario.page_bounded = True
    scenario.check_truthfulness = False
    return scenario


class TestApplyFaults:
    """Multi-fault application: descending order, feasibility checks."""

    def test_two_drops_apply_in_descending_index_order(self):
        scenario = race()
        combo = (FaultSpec(DROP, 0, 0), FaultSpec(DROP, 0, 1))
        variant = apply_faults(scenario, combo)
        assert variant.streams[0] == []
        assert variant.streams[1] == scenario.streams[1]
        assert variant.check_truthfulness is False

    def test_drop_then_reorder_without_partner_is_infeasible(self):
        scenario = race()
        # Reorder at index 0 needs index 1, which the drop removed.
        combo = (FaultSpec(REORDER, 0, 0), FaultSpec(DROP, 0, 1))
        assert apply_fault_combo(scenario, combo) is None

    def test_same_slot_structural_faults_are_infeasible(self):
        scenario = race()
        combo = (FaultSpec(DROP, 0, 0), FaultSpec(BITFLIP, 0, 0, bit=1))
        assert apply_fault_combo(scenario, combo) is None

    def test_same_slot_distinct_bitflips_commute(self):
        scenario = race()
        combo = (FaultSpec(BITFLIP, 0, 0, bit=0),
                 FaultSpec(BITFLIP, 0, 0, bit=4))
        variant = apply_fault_combo(scenario, combo)
        assert variant is not None
        original = scenario.streams[0][0].data
        assert variant.streams[0][0].data == original ^ 0b10001

    def test_same_slot_same_bit_is_infeasible(self):
        scenario = race()
        combo = (FaultSpec(BITFLIP, 0, 0, bit=4),
                 FaultSpec(BITFLIP, 0, 0, bit=4))
        assert apply_fault_combo(scenario, combo) is None

    def test_feasible_combo_applies_both(self):
        scenario = race()
        combo = (FaultSpec(DROP, 0, 0), FaultSpec(DROP, 1, 0))
        variant = apply_fault_combo(scenario, combo)
        assert len(variant.streams[0]) == 1
        assert len(variant.streams[1]) == 1


class TestExhaustiveK2:
    """k=2 is exhaustive: every feasible pair is model-checked."""

    @pytest.mark.parametrize("method", ["shrimp1", "extshadow"])
    def test_hardened_method_safe_under_two_faults(self, method):
        report = verify_method_under_k_faults(method, k=2)
        assert report.verdict == "SAFE", report.summary()
        assert not report.sampled
        assert (report.combos_checked + report.combos_skipped
                == report.combos_total)
        assert report.combos_total == _combination_count(
            _n_singles(method), 2)

    def test_extshadow_combo_space_size(self):
        singles = enumerate_single_faults(race())
        report = verify_method_under_k_faults("extshadow", k=2)
        assert report.combos_total == _combination_count(len(singles), 2)

    def test_k1_matches_single_fault_space(self):
        singles = enumerate_single_faults(race())
        report = verify_method_under_k_faults("extshadow", k=1)
        assert report.combos_total == len(singles)
        assert report.combos_skipped == 0
        assert report.verdict == "SAFE"

    def test_broken_baseline_is_unsafe_baseline(self):
        report = verify_method_under_k_faults("repeated3", k=1,
                                              max_combos=5)
        assert report.verdict == "UNSAFE-BASELINE"
        assert report.acceptable  # hardening is moot, not regressed


class TestSampledSoak:
    """k>=3 samples the space, deterministically per seed."""

    def test_k3_soak_is_sampled_and_safe(self):
        report = verify_method_under_k_faults("shrimp1", k=3,
                                              max_combos=25, seed=11)
        assert report.sampled
        assert report.verdict == "SAFE"
        assert report.combos_checked + report.combos_skipped <= 25

    def test_same_seed_same_sample(self):
        kwargs = dict(k=3, max_combos=20, seed=5)
        first = verify_method_under_k_faults("shrimp1", **kwargs)
        second = verify_method_under_k_faults("shrimp1", **kwargs)
        assert first.to_dict()["combos_checked"] == (
            second.to_dict()["combos_checked"])
        assert first.interleavings_checked == second.interleavings_checked

    def test_explicit_cap_below_space_turns_sampling_on(self):
        report = verify_method_under_k_faults("extshadow", k=2,
                                              max_combos=10, seed=2)
        assert report.sampled
        assert report.combos_checked + report.combos_skipped <= 10

    def test_invalid_k_rejected(self):
        with pytest.raises(VerificationError):
            verify_method_under_k_faults("shrimp1", k=0)


class TestCampaign:
    """The multi-method campaign and its acceptance criterion."""

    def test_campaign_over_small_methods(self):
        reports = run_k_fault_campaign(["shrimp1", "extshadow"], k=2)
        assert set(reports) == {"shrimp1", "extshadow"}
        assert all(r.verdict == "SAFE" for r in reports.values())
        assert all(r.acceptable for r in reports.values())

    def test_report_dict_round_trips_to_json(self):
        import json

        report = verify_method_under_k_faults("shrimp1", k=2)
        payload = json.dumps(report.to_dict())
        assert "SAFE" in payload
        assert "exhaustive" not in payload  # mode lives in summary()
        assert "sampled" in payload

    def test_summary_mentions_mode_and_counts(self):
        report = verify_method_under_k_faults("shrimp1", k=2)
        text = report.summary()
        assert "exhaustive" in text
        assert "k=2" in text


def _n_singles(method):
    scenario = pair_race_scenario(method)
    scenario.page_bounded = True
    scenario.check_truthfulness = False
    return len(enumerate_single_faults(scenario))
