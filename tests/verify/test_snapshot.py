"""Snapshot/restore round-trip property, for every initiation method.

The incremental checker's correctness rests on one invariant: after
``snapshot(); deliver(access); restore(token)`` the whole harness —
simulator, RAM, DMA engine, and protocol recognizer — is byte-identical
to the state before the snapshot.  These tests assert that invariant at
every depth of a delivery sequence, for every protocol registered in
:mod:`repro.core.methods`, both deterministically and under
hypothesis-driven random interleavings.
"""

from __future__ import annotations

from typing import List, Tuple

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.conftest import install_modern_setup, modern_stream_kwargs

from repro.core.methods import METHODS, make_protocol
from repro.verify.interleave import (
    AccessSpec,
    ProtocolHarness,
    initiation_stream,
)

KEY_1, KEY_2 = 0xAAA111, 0xBBB222

SRC_1, DST_1 = 0, 4096
SRC_2, DST_2 = 8192, 12288
SIZE = 256


def method_streams(method: str) -> List[List[AccessSpec]]:
    """Two-process access streams exercising *method*'s recognizer."""
    if method == "kernel":
        # No user-level stream exists; the recognizer still counts the
        # (ignored) shadow accesses, which snapshot must cover.
        return [
            [AccessSpec(1, "store", SRC_1, SIZE),
             AccessSpec(1, "load", SRC_1, final=True)],
            [AccessSpec(2, "load", SRC_2, final=True)],
        ]
    kwargs_1 = {}
    kwargs_2 = {}
    if method == "keyed":
        kwargs_1 = {"key": KEY_1, "ctx_id": 0}
        kwargs_2 = {"key": KEY_2, "ctx_id": 1}
    elif method == "extshadow":
        kwargs_1 = {"ctx_id": 0}
        kwargs_2 = {"ctx_id": 1}
    else:
        kwargs_1, kwargs_2 = modern_stream_kwargs(method)
    return [
        initiation_stream(method, 1, SRC_1, DST_1, SIZE, **kwargs_1),
        initiation_stream(method, 2, SRC_2, DST_2, SIZE, **kwargs_2),
    ]


def make_method_harness(method: str) -> ProtocolHarness:
    harness = ProtocolHarness(lambda: make_protocol(method))
    if method == "keyed":
        harness.install_key(0, KEY_1)
        harness.install_key(1, KEY_2)
    install_modern_setup(harness, method)
    return harness


def capture(harness: ProtocolHarness) -> Tuple:
    """Every observable bit of harness state, as comparable values.

    ``harness.fingerprint()`` covers the behaviour-determining state
    (engine registers, latched transfers, initiation records, protocol
    FSM).  On top of that we compare raw RAM bytes, the simulator's
    counters, and *every* scalar attribute of the protocol object —
    fingerprints deliberately exclude pure statistics counters, but the
    round-trip property must restore even those.
    """
    scalars = tuple(sorted(
        (name, value) for name, value in vars(harness.protocol).items()
        if isinstance(value, (int, str, bool, type(None)))))
    return (
        harness.fingerprint(),
        harness.ram.read(0, harness.ram_size),
        harness.sim.now,
        harness.sim.pending,
        harness.sim.events_fired,
        scalars,
        tuple(harness.engine.initiations),
        harness.engine.protocol_violations,
    )


def zipper(streams: List[List[AccessSpec]]) -> List[AccessSpec]:
    """A deterministic maximal interleaving (round-robin merge)."""
    order: List[AccessSpec] = []
    positions = [0] * len(streams)
    while any(p < len(s) for p, s in zip(positions, streams)):
        for index, stream in enumerate(streams):
            if positions[index] < len(stream):
                order.append(stream[positions[index]])
                positions[index] += 1
    return order


@pytest.mark.parametrize("method", sorted(METHODS))
def test_snapshot_deliver_restore_roundtrip(method):
    """snapshot(); deliver(a); restore() is a no-op at every depth."""
    harness = make_method_harness(method)
    for access in zipper(method_streams(method)):
        before = capture(harness)
        token = harness.snapshot()
        harness.deliver(access)
        harness.restore(token)
        assert capture(harness) == before, (
            f"{method}: restore after delivering {access} did not "
            f"return the harness to its prior state")
        harness.deliver(access)  # move one level deeper and re-test


@pytest.mark.parametrize("method", sorted(METHODS))
def test_snapshot_restore_across_many_deliveries(method):
    """A root snapshot survives an arbitrarily deep excursion."""
    harness = make_method_harness(method)
    order = zipper(method_streams(method))
    harness.deliver(order[0])  # snapshot from a non-virgin state
    before = capture(harness)
    token = harness.snapshot()
    for access in order[1:]:
        harness.deliver(access)
    harness.restore(token)
    assert capture(harness) == before


@settings(max_examples=40, deadline=None)
@given(method=st.sampled_from(sorted(METHODS)), data=st.data())
def test_snapshot_roundtrip_random_interleavings(method, data):
    """The round-trip property under random stream interleavings."""
    harness = make_method_harness(method)
    streams = method_streams(method)
    positions = [0] * len(streams)
    while True:
        live = [i for i, (p, s) in enumerate(zip(positions, streams))
                if p < len(s)]
        if not live:
            break
        index = data.draw(st.sampled_from(live))
        access = streams[index][positions[index]]
        positions[index] += 1
        before = capture(harness)
        token = harness.snapshot()
        harness.deliver(access)
        harness.restore(token)
        assert capture(harness) == before
        harness.deliver(access)
