"""Unit tests for the interleaving enumerator and replay harness."""

import pytest

from repro.errors import VerificationError
from repro.verify.interleave import (
    AccessSpec,
    ProtocolHarness,
    enumerate_interleavings,
    initiation_stream,
    interleaving_count,
)
from repro.hw.dma.protocols.shrimp2 import PendingPairProtocol


def specs(pid, n):
    return [AccessSpec(pid, "store", i * 8, 0) for i in range(n)]


def test_enumeration_count_matches_formula():
    streams = [specs(1, 3), specs(2, 2)]
    orders = list(enumerate_interleavings(streams))
    assert len(orders) == interleaving_count([3, 2]) == 10


def test_each_stream_keeps_internal_order():
    streams = [specs(1, 3), specs(2, 2)]
    for order in enumerate_interleavings(streams):
        for pid, length in ((1, 3), (2, 2)):
            own = [a.paddr for a in order if a.pid == pid]
            assert own == [i * 8 for i in range(length)]


def test_all_orders_distinct():
    streams = [specs(1, 2), specs(2, 2), specs(3, 1)]
    orders = list(enumerate_interleavings(streams))
    assert len(set(orders)) == len(orders) == interleaving_count([2, 2, 1])


def test_single_stream_has_one_order():
    assert len(list(enumerate_interleavings([specs(1, 4)]))) == 1


def test_three_way_count():
    assert interleaving_count([5, 3, 3]) == 9240
    assert interleaving_count([5, 1, 1, 1, 1]) == 3024


def test_replay_resets_between_runs():
    harness = ProtocolHarness(PendingPairProtocol)
    stream = initiation_stream("shrimp2", 1, 0, 0x2000, 64)
    first = harness.replay(stream)
    second = harness.replay(stream)
    assert len(first.records) == len(second.records) == 1
    assert first.records[0].ok and second.records[0].ok


def test_replay_collects_final_status():
    harness = ProtocolHarness(PendingPairProtocol)
    stream = initiation_stream("shrimp2", 1, 0, 0x2000, 64)
    evidence = harness.replay(stream)
    assert evidence.final_status[1] == 64


def test_keys_survive_resets():
    from repro.hw.dma.protocols.keyed import KeyedProtocol

    harness = ProtocolHarness(KeyedProtocol)
    harness.install_key(0, 0x123)
    stream = initiation_stream("keyed", 1, 0, 0x2000, 64, key=0x123)
    for _ in range(3):
        evidence = harness.replay(stream)
        assert evidence.final_status[1] == 64


def test_unknown_op_rejected():
    harness = ProtocolHarness(PendingPairProtocol)
    with pytest.raises(VerificationError):
        harness.deliver(AccessSpec(1, "poke", 0))


def test_stream_builders_cover_all_user_methods():
    for method in ("shrimp1", "shrimp2", "flash", "pal", "extshadow",
                   "repeated3", "repeated4", "repeated5"):
        stream = initiation_stream(method, 1, 0, 0x2000, 64)
        assert stream, method
        assert stream[-1].final

    keyed = initiation_stream("keyed", 1, 0, 0x2000, 64, key=5)
    assert len(keyed) == 4


def test_keyed_stream_requires_key():
    with pytest.raises(VerificationError):
        initiation_stream("keyed", 1, 0, 0x2000, 64)


def test_unknown_method_stream_rejected():
    with pytest.raises(VerificationError):
        initiation_stream("vfio", 1, 0, 0, 1)


def test_stream_lengths_match_paper_access_counts():
    lengths = {
        "shrimp1": 1, "shrimp2": 2, "extshadow": 2,
        "repeated3": 3, "repeated4": 4, "repeated5": 5,
    }
    for method, expected in lengths.items():
        assert len(initiation_stream(method, 1, 0, 0x2000, 64)) == expected


def test_interleaving_cap_enforced():
    from repro.errors import VerificationError
    from repro.verify.adversary import fig8_scenario
    from repro.verify.model_check import check_scenario

    import pytest

    with pytest.raises(VerificationError):
        check_scenario(fig8_scenario(2), max_interleavings=100)
