"""Tests for the mechanized §3.3.1 proof."""

import pytest

from repro.errors import VerificationError
from repro.verify.adversary import fig8_scenario, pair_race_scenario
from repro.verify.proof import prove_fig8


def test_theorem_holds_with_one_adversary():
    report = prove_fig8(fig8_scenario(1))
    assert report.theorem_holds
    assert report.interleavings == 56
    assert report.started > 0  # the check is not vacuous


def test_theorem_holds_with_two_adversaries():
    report = prove_fig8(fig8_scenario(2))
    assert report.theorem_holds
    assert report.interleavings == 9240


def test_theorem_holds_in_worst_case_slots():
    report = prove_fig8(fig8_scenario(4, accesses_per_adversary=1))
    assert report.theorem_holds
    assert report.interleavings == 3024


def test_every_lemma_was_exercised():
    report = prove_fig8(fig8_scenario(1))
    for lemma in report.lemmas.values():
        assert lemma.checked == report_checked(report)
        assert lemma.holds


def report_checked(report):
    return report.lemmas["lemma3"].checked


def test_honest_pair_also_proves():
    report = prove_fig8(pair_race_scenario("repeated5"))
    assert report.theorem_holds
    assert report.started > 0


def test_wrong_method_rejected():
    with pytest.raises(VerificationError):
        prove_fig8(pair_race_scenario("shrimp2"))


def test_summary_text():
    report = prove_fig8(fig8_scenario(1))
    text = report.summary()
    assert "lemma1: HOLDS" in text
    assert "VERIFIED" in text


def test_started_counts_are_consistent():
    report = prove_fig8(fig8_scenario(1))
    assert 0 < report.started <= report.interleavings
