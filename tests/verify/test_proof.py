"""Tests for the mechanized §3.3.1 proof."""

import pytest

from repro.errors import VerificationError
from repro.verify.adversary import fig8_scenario, pair_race_scenario
from repro.verify.proof import prove_fig8


def test_theorem_holds_with_one_adversary():
    report = prove_fig8(fig8_scenario(1))
    assert report.theorem_holds
    assert report.interleavings == 56
    assert report.started > 0  # the check is not vacuous


def test_theorem_holds_with_two_adversaries():
    report = prove_fig8(fig8_scenario(2))
    assert report.theorem_holds
    assert report.interleavings == 9240


def test_theorem_holds_in_worst_case_slots():
    report = prove_fig8(fig8_scenario(4, accesses_per_adversary=1))
    assert report.theorem_holds
    assert report.interleavings == 3024


def test_every_lemma_was_exercised():
    report = prove_fig8(fig8_scenario(1))
    for lemma in report.lemmas.values():
        assert lemma.checked == report_checked(report)
        assert lemma.holds


def report_checked(report):
    return report.lemmas["lemma3"].checked


def test_honest_pair_also_proves():
    report = prove_fig8(pair_race_scenario("repeated5"))
    assert report.theorem_holds
    assert report.started > 0


def test_wrong_method_rejected():
    with pytest.raises(VerificationError):
        prove_fig8(pair_race_scenario("shrimp2"))


def test_summary_text():
    report = prove_fig8(fig8_scenario(1))
    text = report.summary()
    assert "lemma1: HOLDS" in text
    assert "VERIFIED" in text


def test_started_counts_are_consistent():
    report = prove_fig8(fig8_scenario(1))
    assert 0 < report.started <= report.interleavings


class TestRefutationPaths:
    """The failure arms: a broken lemma must render as REFUTED."""

    def _fake_start(self):
        from types import SimpleNamespace

        return SimpleNamespace(psrc=0x1000, pdst=0x2000, size=64)

    def test_check_lemmas_flags_unwritable_destination(self):
        from repro.verify.proof import LemmaResult, _check_lemmas
        from repro.verify.properties import Rights

        lemmas = {name: LemmaResult(name, name)
                  for name in ("lemma1", "lemma2", "lemma3")}
        rights = {1: Rights.over(read_pages=[0x1000])}  # cannot write
        _check_lemmas(0, self._fake_start(), (1, 1, 1, 1, 1), rights,
                      lemmas)
        assert not lemmas["lemma1"].holds
        assert "write access" in lemmas["lemma1"].counterexamples[0][1]
        assert lemmas["lemma2"].holds  # read on the source is granted
        assert lemmas["lemma3"].holds

    def test_check_lemmas_flags_unreadable_source_and_unknown_pid(self):
        from repro.verify.proof import LemmaResult, _check_lemmas
        from repro.verify.properties import Rights

        lemmas = {name: LemmaResult(name, name)
                  for name in ("lemma1", "lemma2", "lemma3")}
        rights = {1: Rights.over(write_pages=[0x2000])}
        # Slot 2 comes from pid 9, which has no rights entry at all.
        _check_lemmas(0, self._fake_start(), (1, 9, 1, 1, 1), rights,
                      lemmas)
        assert not lemmas["lemma2"].holds
        assert not lemmas["lemma3"].holds
        assert "span multiple" in lemmas["lemma3"].counterexamples[0][1]

    def test_summary_renders_refuted_theorem(self):
        from repro.verify.proof import LemmaResult, ProofReport

        broken = LemmaResult("lemma3", "single issuer", checked=4)
        broken.counterexamples.append((2, "contributors (1, 2)"))
        report = ProofReport(
            scenario="fabricated", interleavings=10, started=4,
            lemmas={"lemma1": LemmaResult("lemma1", "dst", checked=4),
                    "lemma3": broken})
        assert not report.theorem_holds
        text = report.summary()
        assert "lemma3: FAILS (1 counterexamples)" in text
        assert "REFUTED" in text
        assert "lemma1: HOLDS" in text
