"""Construction-time MMU legality of scenario streams.

Hand-written and synthesized scenarios share one validator
(repro.verify.legality): a stream that stores to a page its issuer
cannot write — or loads one it cannot read — is rejected when the
Scenario is built, never silently checked as a bogus "attack".
"""

import pytest

from repro.errors import VerificationError
from repro.hw.pagetable import PAGE_SIZE
from repro.verify.interleave import AccessSpec
from repro.verify.legality import (
    access_violation,
    require_legal_streams,
    stream_violations,
)
from repro.verify.model_check import Scenario
from repro.verify.properties import ProcessIntent, Rights

PAGE0 = 0 * PAGE_SIZE
PAGE1 = 1 * PAGE_SIZE
PAGE2 = 2 * PAGE_SIZE

RIGHTS = {
    1: Rights.over(write_pages=[PAGE0, PAGE1]),
    2: Rights.over(read_pages=[PAGE0]),
}


class TestAccessViolation:
    """The per-access oracle."""

    def test_legal_store_and_load(self):
        assert access_violation(AccessSpec(1, "store", PAGE0, 1),
                                RIGHTS) is None
        assert access_violation(AccessSpec(2, "load", PAGE0),
                                RIGHTS) is None

    def test_write_implies_read(self):
        assert access_violation(AccessSpec(1, "load", PAGE1),
                                RIGHTS) is None

    def test_store_needs_write_permission(self):
        problem = access_violation(AccessSpec(2, "store", PAGE0, 1),
                                   RIGHTS)
        assert problem is not None
        assert "write permission" in problem

    def test_exchange_needs_write_permission(self):
        problem = access_violation(AccessSpec(2, "exchange", PAGE0, 1),
                                   RIGHTS)
        assert problem is not None

    def test_load_needs_read_permission(self):
        problem = access_violation(AccessSpec(1, "load", PAGE2), RIGHTS)
        assert problem is not None
        assert "read permission" in problem

    def test_ctx_ops_are_exempt(self):
        assert access_violation(AccessSpec(2, "ctx-store", data=3),
                                RIGHTS) is None
        assert access_violation(AccessSpec(2, "ctx-load"), RIGHTS) is None

    def test_missing_rights_entry(self):
        problem = access_violation(AccessSpec(9, "load", PAGE0), RIGHTS)
        assert problem is not None
        assert "no rights entry" in problem

    def test_unknown_op(self):
        problem = access_violation(AccessSpec(1, "poke", PAGE0), RIGHTS)
        assert problem is not None
        assert "unknown access op" in problem


class TestStreamValidation:
    """Located diagnostics and the raising wrapper."""

    def test_problems_are_located(self):
        streams = [
            [AccessSpec(1, "store", PAGE0, 1)],
            [AccessSpec(2, "store", PAGE1, 1),
             AccessSpec(2, "load", PAGE2)],
        ]
        problems = stream_violations(streams, RIGHTS)
        assert len(problems) == 2
        assert problems[0].startswith("stream 1 access 0:")
        assert problems[1].startswith("stream 1 access 1:")

    def test_require_legal_streams_raises_with_all_problems(self):
        streams = [[AccessSpec(2, "store", PAGE1, 1),
                    AccessSpec(2, "exchange", PAGE2, 1)]]
        with pytest.raises(VerificationError) as exc:
            require_legal_streams(streams, RIGHTS, name="bad-scenario")
        message = str(exc.value)
        assert "bad-scenario" in message
        assert "2 MMU-illegal access(es)" in message

    def test_legal_streams_pass_silently(self):
        require_legal_streams([[AccessSpec(1, "store", PAGE0, 1)],
                               [AccessSpec(2, "load", PAGE0)]], RIGHTS)


class TestScenarioEnforcement:
    """Scenario construction runs the shared validator."""

    def _scenario(self, streams):
        return Scenario(name="legality", method="repeated3",
                        streams=streams, rights=dict(RIGHTS),
                        intents=[ProcessIntent(1, PAGE0, PAGE1, 64)])

    def test_legal_scenario_constructs(self):
        scenario = self._scenario([[AccessSpec(1, "load", PAGE0),
                                    AccessSpec(1, "store", PAGE1, 64)]])
        assert scenario.name == "legality"

    def test_illegal_store_rejected_at_construction(self):
        with pytest.raises(VerificationError) as exc:
            self._scenario([[AccessSpec(2, "store", PAGE1, 64)]])
        assert "write permission" in str(exc.value)

    def test_illegal_load_rejected_at_construction(self):
        with pytest.raises(VerificationError):
            self._scenario([[AccessSpec(2, "load", PAGE2)]])

    def test_builtin_scenarios_are_all_legal(self):
        """Every hand-written scenario passes its own validator."""
        from repro.verify.adversary import builtin_scenarios

        assert len(builtin_scenarios()) >= 10

    def test_synthesized_vocabulary_is_all_legal(self):
        """Generator output and validator agree by construction."""
        from repro.verify.synth import access_vocabulary, standard_profile

        profile = standard_profile()
        for access in access_vocabulary(profile):
            assert access_violation(access,
                                    {profile.pid: profile.rights}) is None
