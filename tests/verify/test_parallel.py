"""The parallel fan-out must be invisible: same results, any pool size."""

from __future__ import annotations

import pytest

from repro.verify.adversary import builtin_scenarios, fig8_scenario
from repro.verify.incremental import check_scenario_incremental
from repro.verify.model_check import check_scenario
from repro.verify.parallel import (
    ParallelChecker,
    merge_branch_results,
)

SMALL = builtin_scenarios()[:4]  # fig5, fig6, fig8(1), fig8(2)


def test_serial_worker_matches_direct_calls():
    checker = ParallelChecker(n_workers=1)
    report = checker.check_many(SMALL)
    assert report.n_workers == 1
    assert report.n_tasks == len(SMALL)
    assert report.split_scenarios == []
    assert report.results == [check_scenario_incremental(s) for s in SMALL]


def test_pool_matches_serial_results():
    serial = ParallelChecker(n_workers=1).check_many(SMALL).results
    pooled = ParallelChecker(n_workers=2,
                             split_threshold=10**9).check_many(SMALL)
    assert pooled.results == serial
    assert pooled.split_scenarios == []


def test_branch_split_merges_deterministically():
    """A split large scenario merges back to the unsplit result."""
    scenario = fig8_scenario(2)  # 9240 orders, 3 streams
    whole = check_scenario_incremental(scenario)
    checker = ParallelChecker(n_workers=2, split_threshold=2000)
    report = checker.check_many([scenario])
    assert report.split_scenarios == [scenario.name]
    assert report.n_tasks == len(scenario.streams)
    assert report.results == [whole]


def test_oracle_mode_uses_naive_checker_and_never_splits():
    checker = ParallelChecker(n_workers=2, incremental=False,
                              split_threshold=1)
    report = checker.check_many(SMALL)
    assert report.split_scenarios == []
    assert report.results == [check_scenario(s) for s in SMALL]


def test_check_scenario_convenience():
    scenario = SMALL[0]
    assert (ParallelChecker(n_workers=2).check_scenario(scenario)
            == check_scenario_incremental(scenario))


def test_results_keep_input_order():
    scenarios = list(reversed(SMALL))
    report = ParallelChecker(n_workers=2).check_many(scenarios)
    assert [r.scenario for r in report.results] == [s.name
                                                    for s in scenarios]


def test_merge_branch_results_caps_examples():
    scenario = builtin_scenarios()[0]  # fig5: violating
    parts = [check_scenario_incremental(scenario, prefix_choices=[index])
             for index in range(len(scenario.streams))]
    merged = merge_branch_results(scenario.name, parts, max_examples=2)
    whole = check_scenario_incremental(scenario, max_examples=2)
    assert merged.total_interleavings == whole.total_interleavings
    assert merged.violating_interleavings == whole.violating_interleavings
    assert merged.violations_by_property == whole.violations_by_property
    assert len(merged.examples) == 2
    assert merged.examples == whole.examples


def test_invalid_worker_count_rejected():
    with pytest.raises(ValueError):
        ParallelChecker(n_workers=0)
