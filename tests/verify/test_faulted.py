"""Model-checker level fault verification (repro.verify.faulted)."""

import pytest

from repro.faults.plan import BITFLIP, DELAY, DROP, DUPLICATE, REORDER
from repro.verify.adversary import pair_race_scenario
from repro.verify.faulted import (
    FAULT_HARDENED_METHODS,
    VERIFIABLE_METHODS,
    FaultSpec,
    all_acceptable,
    apply_fault,
    enumerate_single_faults,
    method_fault_scenarios,
    run_fault_verification,
    verify_method_under_faults,
)
from repro.verify.incremental import check_scenario_incremental


def race(method="keyed", page_bounded=True):
    scenario = pair_race_scenario(method)
    scenario.page_bounded = page_bounded
    scenario.check_truthfulness = False
    return scenario


class TestFaultSpec:
    def test_label_without_bit(self):
        assert FaultSpec(DROP, 0, 2).label() == "drop[s0.a2]"

    def test_label_with_bit(self):
        assert FaultSpec(BITFLIP, 1, 2, bit=13).label() == "bitflip[s1.a2.b13]"


class TestEnumeration:
    def test_every_kind_is_represented(self):
        kinds = {s.kind for s in enumerate_single_faults(race())}
        assert kinds == {DROP, DUPLICATE, REORDER, DELAY, BITFLIP}

    def test_specs_are_unique(self):
        specs = enumerate_single_faults(race())
        assert len(specs) == len(set(specs))

    def test_every_access_can_be_dropped(self):
        scenario = race()
        drops = [s for s in enumerate_single_faults(scenario)
                 if s.kind == DROP]
        assert len(drops) == sum(len(st) for st in scenario.streams)


class TestApplyFault:
    def test_drop_removes_one_access(self):
        scenario = race()
        variant = apply_fault(scenario, FaultSpec(DROP, 0, 0))
        assert len(variant.streams[0]) == len(scenario.streams[0]) - 1
        assert variant.streams[0][0] == scenario.streams[0][1]

    def test_duplicate_inserts_a_copy(self):
        scenario = race()
        variant = apply_fault(scenario, FaultSpec(DUPLICATE, 0, 0))
        assert variant.streams[0][0] == variant.streams[0][1]

    def test_reorder_swaps_adjacent_accesses(self):
        scenario = race()
        variant = apply_fault(scenario, FaultSpec(REORDER, 0, 0))
        assert variant.streams[0][0] == scenario.streams[0][1]
        assert variant.streams[0][1] == scenario.streams[0][0]

    def test_delay_migrates_to_stream_end(self):
        scenario = race()
        variant = apply_fault(scenario, FaultSpec(DELAY, 0, 0))
        assert variant.streams[0][-1] == scenario.streams[0][0]

    def test_bitflip_perturbs_the_data_word(self):
        scenario = race()
        spec = next(s for s in enumerate_single_faults(scenario)
                    if s.kind == BITFLIP)
        variant = apply_fault(scenario, spec)
        original = scenario.streams[spec.stream][spec.index]
        flipped = variant.streams[spec.stream][spec.index]
        assert flipped.data == original.data ^ (1 << spec.bit)

    def test_variant_never_checks_truthfulness(self):
        scenario = race()
        variant = apply_fault(scenario, FaultSpec(DROP, 0, 0))
        assert not variant.check_truthfulness
        assert variant.page_bounded
        assert "drop[s0.a0]" in variant.name

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            apply_fault(race(), FaultSpec("melt", 0, 0))


class TestVerdicts:
    @pytest.mark.parametrize("method", FAULT_HARDENED_METHODS)
    def test_hardened_methods_survive_every_single_fault(self, method):
        report = verify_method_under_faults(method)
        assert report.verdict == "SAFE"
        assert report.variants_checked > 0
        assert not report.newly_unsafe

    @pytest.mark.parametrize("method", ["repeated3", "repeated4", "shrimp2"])
    def test_known_broken_methods_classify_as_baseline_unsafe(self, method):
        report = verify_method_under_faults(method)
        assert report.verdict == "UNSAFE-BASELINE"
        assert report.acceptable  # fault-hardening is moot, not regressed

    def test_no_method_is_newly_unsafe(self):
        reports = run_fault_verification()
        assert set(reports) == set(VERIFIABLE_METHODS)
        assert all_acceptable(reports)
        assert all(r.verdict != "NEWLY-UNSAFE" for r in reports.values())

    def test_summary_mentions_method_and_verdict(self):
        report = verify_method_under_faults("shrimp1")
        assert "shrimp1" in report.summary()
        assert "SAFE" in report.summary()


class TestPageBoundingIsLoadBearing:
    """Bit 13 (= PAGE_SHIFT) flips a size word past the page boundary.

    Without the engine's page-bounding hardening a single such flip
    turns keyed/extshadow initiation into a cross-page write — exactly
    the NEWLY-UNSAFE class the fault verification exists to catch.
    """

    @pytest.mark.parametrize("method", ["keyed", "extshadow"])
    def test_unbounded_engine_breaks_under_bit13_flip(self, method):
        scenario = race(method, page_bounded=False)
        flips = [s for s in enumerate_single_faults(scenario)
                 if s.kind == BITFLIP and s.bit == 13]
        assert any(
            check_scenario_incremental(
                apply_fault(scenario, spec)).attack_found
            for spec in flips)

    @pytest.mark.parametrize("method", ["keyed", "extshadow"])
    def test_bounded_engine_survives_bit13_flip(self, method):
        scenario = race(method, page_bounded=True)
        flips = [s for s in enumerate_single_faults(scenario)
                 if s.kind == BITFLIP and s.bit == 13]
        assert flips
        for spec in flips:
            result = check_scenario_incremental(apply_fault(scenario, spec))
            assert not result.attack_found


class TestScenarioSelection:
    def test_repeated3_baseline_includes_its_attack_figure(self):
        names = [s.name for s in method_fault_scenarios("repeated3")]
        assert len(names) == 2

    def test_pair_race_is_always_first(self):
        for method in ("keyed", "repeated4"):
            scenarios = method_fault_scenarios(method)
            assert "race" in scenarios[0].name
            assert scenarios[0].page_bounded
            assert not scenarios[0].check_truthfulness
