"""The paper's attack and safety scenarios, checked exhaustively.

These are the mechanical counterparts of Figs. 5, 6, and 8 and of the
§3.1/§3.2 safety claims: the model checker must *find* the published
attacks and must *fail to find* any attack on the paper's methods.
"""

import pytest

from repro.verify.adversary import (
    ADDR_B,
    ADDR_C,
    fig5_scenario,
    fig6_scenario,
    fig8_scenario,
    key_guessing_scenario,
    pair_race_scenario,
)
from repro.verify.model_check import check_scenario, replay_interleaving


class TestFig5:
    """The 3-instruction repeated-passing variant is exploitable."""

    def test_exact_figure_interleaving_reproduces_attack(self):
        scenario, figure_order = fig5_scenario()
        violations = replay_interleaving(scenario, figure_order)
        assert any(v.prop == "authorized-start" for v in violations)

    def test_attack_moves_adversary_data_into_victim_page(self):
        from repro.verify.model_check import make_harness

        scenario, figure_order = fig5_scenario()
        harness = make_harness(scenario)
        evidence = harness.replay(figure_order)
        started = [r for r in evidence.records if r.ok]
        assert len(started) == 1
        # C -> B: the adversary's data lands in the victim's page.
        assert started[0].psrc == ADDR_C
        assert started[0].pdst == ADDR_B
        assert started[0].issuer == 2

    def test_exhaustive_search_finds_attacks(self):
        scenario, _ = fig5_scenario()
        result = check_scenario(scenario)
        assert result.attack_found
        assert result.violations_by_property.get("authorized-start", 0) > 0

    def test_victims_own_interleavings_still_work(self):
        """With no adversary, every victim-only order succeeds."""
        scenario, _ = fig5_scenario()
        solo = type(scenario)(
            name="fig5-solo", method="repeated3",
            streams=[scenario.streams[0]], rights=scenario.rights,
            intents=scenario.intents)
        result = check_scenario(solo)
        assert result.safe


class TestFig6:
    """The 4-instruction variant lets an adversary steal the start."""

    def test_exact_figure_interleaving_misinforms_victim(self):
        scenario, figure_order = fig6_scenario()
        violations = replay_interleaving(scenario, figure_order)
        props = {v.prop for v in violations}
        assert "truthful-status" in props

    def test_adversary_receives_the_start(self):
        from repro.verify.model_check import make_harness

        scenario, figure_order = fig6_scenario()
        harness = make_harness(scenario)
        evidence = harness.replay(figure_order)
        started = [r for r in evidence.records if r.ok]
        assert len(started) == 1
        assert started[0].issuer == 2  # the malicious LOAD fired it

    def test_exhaustive_search_finds_attack(self):
        scenario, _ = fig6_scenario()
        result = check_scenario(scenario)
        assert result.attack_found

    def test_attack_needs_read_access_to_source(self):
        """Without read access to A the adversary has no legal stream."""
        scenario, _ = fig6_scenario()
        # Replace the adversary's load of A with a load of its own page:
        from repro.verify.interleave import AccessSpec

        blind = type(scenario)(
            name="fig6-blind", method="repeated4",
            streams=[scenario.streams[0],
                     [AccessSpec(2, "load", ADDR_C, final=True)]],
            rights=scenario.rights, intents=scenario.intents)
        result = check_scenario(blind)
        assert result.safe


class TestFig8:
    """§3.3.1: the 5-instruction variant survives every interleaving."""

    @pytest.mark.parametrize("n_adversaries", [1, 2])
    def test_safe_with_source_reading_adversaries(self, n_adversaries):
        result = check_scenario(fig8_scenario(n_adversaries))
        assert result.safe
        assert result.total_interleavings > 50

    def test_safe_without_source_access(self):
        result = check_scenario(
            fig8_scenario(1, adversary_reads_source=False))
        assert result.safe

    def test_worst_case_every_slot_from_a_different_process(self):
        """Fig. 8(a): four one-slot adversaries around the victim."""
        result = check_scenario(
            fig8_scenario(4, accesses_per_adversary=1))
        assert result.safe
        assert result.total_interleavings == 3024  # 9!/5!


class TestPairRaces:
    """Two honest processes racing: who needs the kernel hook?"""

    def test_shrimp2_race_found(self):
        result = check_scenario(pair_race_scenario("shrimp2"))
        assert result.attack_found
        assert "authorized-start" in result.violations_by_property

    def test_flash_without_hook_races_too(self):
        result = check_scenario(pair_race_scenario("flash"))
        assert result.attack_found

    @pytest.mark.parametrize("method",
                             ["keyed", "extshadow", "repeated5"])
    def test_paper_methods_race_free(self, method):
        result = check_scenario(pair_race_scenario(method))
        assert result.safe, result.summary()

    def test_repeated4_honest_pair_race(self):
        """Even two honest processes can misreport under the 4-variant."""
        result = check_scenario(pair_race_scenario("repeated4"))
        # The 4-variant's flaw needs shared read access; honest pairs
        # with disjoint pages merely fail and retry — either outcome is
        # a finding worth recording, so just assert determinism here.
        again = check_scenario(pair_race_scenario("repeated4"))
        assert result.violating_interleavings == (
            again.violating_interleavings)


class TestKeyGuessing:
    """§3.1: wrong keys never break anything; the right key would."""

    def test_wrong_guesses_are_harmless(self):
        scenario = key_guessing_scenario(
            true_key=0xABCDEF, guesses=[0x111, 0x222, 0x333])
        result = check_scenario(scenario)
        assert result.safe

    def test_correct_guess_would_succeed(self):
        """Confirms the check is not vacuous: knowing the key *does*
        let the adversary redirect the context."""
        scenario = key_guessing_scenario(
            true_key=0xABCDEF, guesses=[0xABCDEF])
        result = check_scenario(scenario)
        assert result.attack_found

    def test_summary_strings(self):
        scenario, _ = fig5_scenario()
        result = check_scenario(scenario)
        assert "violate" in result.summary()
        safe = check_scenario(fig8_scenario(1))
        assert "SAFE" in safe.summary()
