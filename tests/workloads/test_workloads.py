"""Unit tests for workload patterns and generators."""

import itertools
import random

import pytest

from repro.workloads.generators import (
    DmaRequest,
    RequestGenerator,
    poisson_arrivals,
)
from repro.workloads.patterns import (
    MessageSizeMix,
    SMALL_MESSAGE_MIX,
    UNIFORM_MIX,
    offsets_random,
    offsets_sequential,
    offsets_strided,
)


class TestOffsets:
    def test_sequential_walks_and_wraps(self):
        gen = offsets_sequential(256, 64)
        assert list(itertools.islice(gen, 6)) == [0, 64, 128, 192, 0, 64]

    def test_sequential_rejects_oversized_chunk(self):
        with pytest.raises(ValueError):
            next(offsets_sequential(64, 128))

    def test_strided(self):
        gen = offsets_strided(1024, 8, 256)
        first = list(itertools.islice(gen, 4))
        assert first == [0, 256, 512, 768]

    def test_strided_validation(self):
        with pytest.raises(ValueError):
            next(offsets_strided(64, 8, 0))

    def test_random_fits_and_aligns(self):
        rng = random.Random(1)
        for offset in itertools.islice(
                offsets_random(4096, 64, rng, align=8), 200):
            assert 0 <= offset <= 4096 - 64
            assert offset % 8 == 0

    def test_random_deterministic_by_seed(self):
        a = list(itertools.islice(
            offsets_random(4096, 64, random.Random(7)), 10))
        b = list(itertools.islice(
            offsets_random(4096, 64, random.Random(7)), 10))
        assert a == b


class TestSizeMix:
    def test_small_heavy_mean_is_small(self):
        assert SMALL_MESSAGE_MIX.mean < UNIFORM_MIX.mean

    def test_samples_come_from_sizes(self):
        rng = random.Random(3)
        for size in SMALL_MESSAGE_MIX.sample_many(rng, 500):
            assert size in SMALL_MESSAGE_MIX.sizes

    def test_small_sizes_dominate(self):
        rng = random.Random(5)
        samples = SMALL_MESSAGE_MIX.sample_many(rng, 4000)
        small = sum(1 for s in samples if s <= 256)
        assert small / len(samples) > 0.6

    def test_validation(self):
        with pytest.raises(ValueError):
            MessageSizeMix("bad", (1, 2), (1.0,))
        with pytest.raises(ValueError):
            MessageSizeMix("bad", (), ())
        with pytest.raises(ValueError):
            MessageSizeMix("bad", (1,), (-1.0,))


class TestRequestGenerator:
    def test_requests_fit_buffers(self):
        gen = RequestGenerator(65536, seed=2)
        for request in gen.requests(300):
            assert request.src_offset + request.size <= 65536
            assert request.dst_offset + request.size <= 65536

    def test_deterministic(self):
        a = RequestGenerator(65536, seed=9).requests(20)
        b = RequestGenerator(65536, seed=9).requests(20)
        assert a == b

    def test_seeds_differ(self):
        a = RequestGenerator(65536, seed=1).requests(20)
        b = RequestGenerator(65536, seed=2).requests(20)
        assert a != b

    def test_buffer_must_fit_largest_message(self):
        with pytest.raises(ValueError):
            RequestGenerator(1024, mix=SMALL_MESSAGE_MIX)

    def test_stream_is_endless(self):
        gen = RequestGenerator(65536, seed=0)
        stream = gen.stream()
        items = [next(stream) for _ in range(5)]
        assert all(isinstance(i, DmaRequest) for i in items)


class TestPoissonArrivals:
    def test_monotone_increasing(self):
        times = poisson_arrivals(1000.0, 100, seed=4)
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_mean_rate_roughly_matches(self):
        from repro.units import to_seconds

        times = poisson_arrivals(10_000.0, 2000, seed=4)
        span = to_seconds(times[-1] - times[0])
        rate = (len(times) - 1) / span
        assert rate == pytest.approx(10_000.0, rel=0.15)

    def test_validation(self):
        with pytest.raises(ValueError):
            poisson_arrivals(0, 5)
        with pytest.raises(ValueError):
            poisson_arrivals(10, 0)

    def test_start_offset(self):
        times = poisson_arrivals(100.0, 5, seed=1, start=1_000_000)
        assert times[0] > 1_000_000
