"""Unit tests for the write buffer, including the footnote-6 behaviours."""

import pytest

from repro.errors import ConfigError
from repro.hw.writebuffer import WriteBuffer


def collect_drains(log):
    def drain(paddr, value):
        log.append((paddr, value))
        return 100
    return drain


def test_post_buffers_without_draining():
    wb = WriteBuffer()
    log = []
    wb.post(0x100, 1, collect_drains(log))
    assert log == []
    assert len(wb) == 1


def test_flush_drains_fifo_order():
    wb = WriteBuffer(collapsing=False)
    log = []
    drain = collect_drains(log)
    wb.post(1, 10, drain)
    wb.post(2, 20, drain)
    wb.post(3, 30, drain)
    cost = wb.flush(drain)
    assert log == [(1, 10), (2, 20), (3, 30)]
    assert cost == 300
    assert len(wb) == 0


def test_collapsing_merges_same_address():
    wb = WriteBuffer(collapsing=True)
    log = []
    drain = collect_drains(log)
    wb.post(0x100, 1, drain)
    wb.post(0x100, 2, drain)  # collapses; device never sees value 1
    wb.flush(drain)
    assert log == [(0x100, 2)]
    assert wb.stores_collapsed == 1


def test_no_collapsing_keeps_both():
    wb = WriteBuffer(collapsing=False)
    log = []
    drain = collect_drains(log)
    wb.post(0x100, 1, drain)
    wb.post(0x100, 2, drain)
    wb.flush(drain)
    assert log == [(0x100, 1), (0x100, 2)]


def test_capacity_drains_oldest_to_make_room():
    wb = WriteBuffer(capacity=2, collapsing=False)
    log = []
    drain = collect_drains(log)
    wb.post(1, 1, drain)
    wb.post(2, 2, drain)
    cost = wb.post(3, 3, drain)
    assert log == [(1, 1)]
    assert cost == 100
    assert wb.pending_addresses() == [2, 3]


def test_forward_only_in_relaxed_mode():
    strong = WriteBuffer(relaxed=False)
    strong.post(0x100, 42, collect_drains([]))
    assert strong.forward(0x100) is None

    relaxed = WriteBuffer(relaxed=True)
    relaxed.post(0x100, 42, collect_drains([]))
    assert relaxed.forward(0x100) == 42
    assert relaxed.loads_forwarded == 1


def test_forward_misses_other_addresses():
    wb = WriteBuffer(relaxed=True)
    wb.post(0x100, 42, collect_drains([]))
    assert wb.forward(0x200) is None


def test_forward_returns_newest_value():
    wb = WriteBuffer(relaxed=True, collapsing=False)
    drain = collect_drains([])
    wb.post(0x100, 1, drain)
    wb.post(0x100, 2, drain)
    assert wb.forward(0x100) == 2


def test_discard_drops_entries_without_draining():
    wb = WriteBuffer()
    log = []
    wb.post(1, 1, collect_drains(log))
    assert wb.discard() == 1
    assert log == []
    assert len(wb) == 0


def test_counters():
    wb = WriteBuffer(collapsing=True)
    log = []
    drain = collect_drains(log)
    wb.post(1, 1, drain)
    wb.post(1, 2, drain)
    wb.flush(drain)
    assert wb.stores_posted == 2
    assert wb.stores_collapsed == 1
    assert wb.drains == 1


def test_zero_capacity_rejected():
    with pytest.raises(ConfigError):
        WriteBuffer(capacity=0)


def test_full_property():
    wb = WriteBuffer(capacity=1)
    assert not wb.full
    wb.post(1, 1, collect_drains([]))
    assert wb.full
