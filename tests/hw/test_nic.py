"""Unit tests for the NIC: global addressing, remote routing."""

import pytest

from repro.errors import AddressError, ConfigError, NetworkError
from repro.hw.dma.protocols.shrimp2 import PendingPairProtocol
from repro.hw.memory import PhysicalMemory
from repro.hw.nic import GlobalAddressMap, NetworkInterface
from repro.sim.engine import Simulator
from repro.units import kib


class FakeFabric:
    """Captures remote writes; exposes per-node RAM."""

    def __init__(self, rams):
        self.rams = rams
        self.sent = []

    def send_write(self, src_node, dst_node, pdst_local, payload):
        self.sent.append((src_node, dst_node, pdst_local, payload))
        self.rams[dst_node].write(pdst_local, payload)

    def node_ram(self, node):
        if node not in self.rams:
            raise NetworkError(f"no node {node}")
        return self.rams[node]


class TestGlobalAddressMap:
    def test_roundtrip(self):
        amap = GlobalAddressMap()
        for node, local in [(0, 0), (3, 0x1234), (63, (1 << 28) - 8)]:
            assert amap.decode(amap.encode(node, local)) == (node, local)

    def test_node_zero_is_identity(self):
        amap = GlobalAddressMap()
        assert amap.encode(0, 0x5000) == 0x5000

    def test_overflow_rejected(self):
        amap = GlobalAddressMap()
        with pytest.raises(AddressError):
            amap.encode(64, 0)
        with pytest.raises(AddressError):
            amap.encode(0, 1 << 28)
        with pytest.raises(AddressError):
            amap.decode(1 << 40)

    def test_negative_rejected(self):
        with pytest.raises(AddressError):
            GlobalAddressMap().decode(-1)

    def test_bad_widths_rejected(self):
        with pytest.raises(ConfigError):
            GlobalAddressMap(node_bits=0)


def make_pair():
    sim = Simulator()
    ram0 = PhysicalMemory(kib(64))
    ram1 = PhysicalMemory(kib(64))
    fabric = FakeFabric({0: ram0, 1: ram1})
    nic0 = NetworkInterface(sim, ram0, PendingPairProtocol(), node_id=0,
                            fabric=fabric)
    return sim, ram0, ram1, fabric, nic0


def test_local_transfer_stays_local():
    sim, ram0, _, fabric, nic0 = make_pair()
    ram0.write(0, b"local")
    status = nic0.try_start(0, 0x800, 5)
    sim.run()
    assert status == 5
    assert ram0.read(0x800, 5) == b"local"
    assert fabric.sent == []


def test_remote_destination_routed_over_fabric():
    sim, ram0, ram1, fabric, nic0 = make_pair()
    ram0.write(0, b"to node 1")
    remote = nic0.addr_map.encode(1, 0x800)
    status = nic0.try_start(0, remote, 9)
    sim.run()
    assert status == 9
    assert ram1.read(0x800, 9) == b"to node 1"
    assert nic0.remote_sends == 1


def test_remote_destination_validated_against_remote_ram():
    _, _, _, _, nic0 = make_pair()
    too_far = nic0.addr_map.encode(1, kib(64) - 4)
    assert nic0.try_start(0, too_far, 64) == (1 << 64) - 1


def test_unknown_node_rejected():
    _, _, _, _, nic0 = make_pair()
    ghost = nic0.addr_map.encode(9, 0)
    assert nic0.try_start(0, ghost, 8) == (1 << 64) - 1


def test_remote_source_never_allowed():
    sim, ram0, _, fabric, nic0 = make_pair()
    remote_src = nic0.addr_map.encode(1, 0)
    assert nic0.try_start(remote_src, 0, 8) == (1 << 64) - 1


def test_no_fabric_means_local_only():
    sim = Simulator()
    ram = PhysicalMemory(kib(64))
    nic = NetworkInterface(sim, ram, PendingPairProtocol(), node_id=0,
                           fabric=None)
    remote = nic.addr_map.encode(1, 0)
    assert nic.try_start(0, remote, 8) == (1 << 64) - 1
    assert nic.try_start(0, 0x800, 8) == 8


def test_nonzero_node_treats_own_global_addresses_as_local():
    sim = Simulator()
    ram = PhysicalMemory(kib(64))
    fabric = FakeFabric({2: ram})
    nic = NetworkInterface(sim, ram, PendingPairProtocol(), node_id=2,
                           fabric=fabric)
    ram.write(0, b"self")
    me = nic.global_address(0)
    status = nic.try_start(me, nic.global_address(0x800), 4)
    sim.run()
    assert status == 4
    assert ram.read(0x800, 4) == b"self"
    assert fabric.sent == []


def test_ram_must_fit_node_address_space():
    sim = Simulator()
    big = PhysicalMemory(1 << 29)  # 512 MiB > 2^28
    with pytest.raises(ConfigError):
        NetworkInterface(sim, big, PendingPairProtocol())
