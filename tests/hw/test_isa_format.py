"""Tests for the assembly formatter."""

from repro.hw.isa import (
    Add,
    Addr,
    Beq,
    CallPal,
    CompareExchange,
    Halt,
    Jump,
    Label,
    Load,
    Mb,
    Mov,
    Nop,
    Store,
    Syscall,
    assemble,
    format_instruction,
    format_program,
)


def test_memory_instructions():
    assert format_instruction(
        Load("v0", Addr(None, 0x1000))) == "ldq   v0, [0x1000]"
    assert format_instruction(
        Store(Addr("a1", 8), "a2")) == "stq   a2, [a1+0x8]"
    assert format_instruction(
        CompareExchange("v0", Addr(None, 0x20), 64)).startswith("cex")


def test_alu_and_control():
    assert format_instruction(Mov("t0", 5)) == "mov   t0, 5"
    assert format_instruction(Add("t1", "t0", 1)) == "addq  t1, t0, 1"
    assert format_instruction(Beq("t0", 0, "retry")).endswith("retry")
    assert format_instruction(Jump("end")) == "br    end"
    assert format_instruction(Mb()) == "mb"
    assert format_instruction(Halt()) == "halt"
    assert format_instruction(Nop()) == "nop"


def test_traps():
    assert format_instruction(CallPal("user_level_dma")) == (
        "call_pal user_level_dma")
    assert format_instruction(Syscall("dma")) == "syscall dma"


def test_large_immediates_hex():
    text = format_instruction(Store(Addr(None, 0), 1 << 40))
    assert "0x10000000000" in text


def test_program_listing_reinserts_labels():
    program = assemble([
        Label("retry"),
        Store(Addr(None, 0x1000), 64),
        Beq("v0", 0, "retry"),
        Halt(),
    ])
    listing = format_program(program)
    lines = listing.splitlines()
    assert lines[0] == "retry:"
    assert lines[1].strip().startswith("stq")
    assert "beq" in listing
    assert listing.rstrip().endswith("halt")


def test_listing_matches_the_papers_fig3_shape():
    from tests.conftest import ready_channel

    ws, proc, src, dst, chan = ready_channel("keyed")
    listing = format_program(
        chan.program(src.vaddr, dst.vaddr, 64))
    ops = [line.strip().split()[0] for line in listing.splitlines()]
    assert ops == ["stq", "stq", "stq", "ldq", "halt"]
