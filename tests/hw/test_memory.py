"""Unit tests for physical memory and the frame allocator."""

import pytest

from repro.errors import AddressError, MemoryError_
from repro.hw.memory import (
    FrameAllocator,
    PhysicalMemory,
    make_ram_and_allocator,
)
from repro.hw.pagetable import PAGE_SIZE
from repro.units import kib


def test_ram_starts_zeroed():
    ram = PhysicalMemory(kib(64))
    assert ram.read(0, 16) == bytes(16)


def test_write_read_roundtrip():
    ram = PhysicalMemory(kib(64))
    ram.write(100, b"hello")
    assert ram.read(100, 5) == b"hello"


def test_ram_size_must_be_page_multiple():
    with pytest.raises(MemoryError_):
        PhysicalMemory(1000)


def test_out_of_range_read_rejected():
    ram = PhysicalMemory(kib(8))
    with pytest.raises(MemoryError_):
        ram.read(kib(8) - 2, 4)


def test_out_of_range_write_rejected():
    ram = PhysicalMemory(kib(8))
    with pytest.raises(MemoryError_):
        ram.write(kib(8), b"x")


def test_negative_length_rejected():
    ram = PhysicalMemory(kib(8))
    with pytest.raises(AddressError):
        ram.read(0, -1)


def test_fill():
    ram = PhysicalMemory(kib(8))
    ram.fill(10, 5, 0xAB)
    assert ram.read(10, 5) == b"\xab" * 5
    assert ram.read(15, 1) == b"\x00"


def test_fill_rejects_non_byte_value():
    ram = PhysicalMemory(kib(8))
    with pytest.raises(ValueError):
        ram.fill(0, 4, 300)


def test_copy_moves_bytes():
    ram = PhysicalMemory(kib(8))
    ram.write(0, b"abcdef")
    ram.copy(0, 100, 6)
    assert ram.read(100, 6) == b"abcdef"


def test_copy_overlap_safe():
    ram = PhysicalMemory(kib(8))
    ram.write(0, b"abcdef")
    ram.copy(0, 2, 6)
    assert ram.read(2, 6) == b"abcdef"


def test_word_roundtrip():
    ram = PhysicalMemory(kib(8))
    ram.write_word(8, 0xDEADBEEF_CAFEF00D)
    assert ram.read_word(8) == 0xDEADBEEF_CAFEF00D


def test_word_little_endian():
    ram = PhysicalMemory(kib(8))
    ram.write_word(0, 0x01)
    assert ram.read(0, 8) == b"\x01" + bytes(7)


def test_word_masks_to_64_bits():
    ram = PhysicalMemory(kib(8))
    ram.write_word(0, (1 << 70) | 5)
    assert ram.read_word(0) == 5


def test_unaligned_word_rejected():
    ram = PhysicalMemory(kib(8))
    with pytest.raises(AddressError):
        ram.read_word(4)
    with pytest.raises(AddressError):
        ram.write_word(12, 1)


def test_contains():
    ram = PhysicalMemory(kib(8))
    assert ram.contains(0, kib(8))
    assert not ram.contains(0, kib(8) + 1)
    assert not ram.contains(-1)
    assert not ram.contains(0, 0)


class TestFrameAllocator:
    def test_alloc_sequential(self):
        alloc = FrameAllocator(0, 4 * PAGE_SIZE)
        frames = [alloc.alloc_frame() for _ in range(4)]
        assert frames == [0, PAGE_SIZE, 2 * PAGE_SIZE, 3 * PAGE_SIZE]

    def test_exhaustion(self):
        alloc = FrameAllocator(0, PAGE_SIZE)
        alloc.alloc_frame()
        with pytest.raises(MemoryError_):
            alloc.alloc_frame()

    def test_free_and_reuse(self):
        alloc = FrameAllocator(0, 2 * PAGE_SIZE)
        frame = alloc.alloc_frame()
        alloc.free_frame(frame)
        assert alloc.alloc_frame() == frame

    def test_contiguous(self):
        alloc = FrameAllocator(0, 8 * PAGE_SIZE)
        base = alloc.alloc_contiguous(4)
        assert base == 0
        assert alloc.alloc_frame() == 4 * PAGE_SIZE

    def test_contiguous_exhaustion(self):
        alloc = FrameAllocator(0, 2 * PAGE_SIZE)
        with pytest.raises(MemoryError_):
            alloc.alloc_contiguous(3)

    def test_bogus_free_rejected(self):
        alloc = FrameAllocator(0, 2 * PAGE_SIZE)
        alloc.alloc_frame()
        with pytest.raises(MemoryError_):
            alloc.free_frame(123)  # unaligned
        with pytest.raises(MemoryError_):
            alloc.free_frame(100 * PAGE_SIZE)  # out of region

    def test_double_free_detected_by_outstanding_count(self):
        alloc = FrameAllocator(0, 2 * PAGE_SIZE)
        frame = alloc.alloc_frame()
        alloc.free_frame(frame)
        with pytest.raises(MemoryError_):
            alloc.free_frame(frame)

    def test_counters(self):
        alloc = FrameAllocator(PAGE_SIZE, 4 * PAGE_SIZE)
        assert alloc.total_frames == 4
        alloc.alloc_frame()
        alloc.alloc_contiguous(2)
        assert alloc.frames_in_use == 3

    def test_reserved_base(self):
        alloc = FrameAllocator(2 * PAGE_SIZE, 2 * PAGE_SIZE)
        assert alloc.alloc_frame() == 2 * PAGE_SIZE

    def test_unaligned_region_rejected(self):
        with pytest.raises(MemoryError_):
            FrameAllocator(100, PAGE_SIZE)


def test_make_ram_and_allocator_reserves():
    ram, alloc = make_ram_and_allocator(4 * PAGE_SIZE,
                                        reserved=PAGE_SIZE)
    assert ram.size == 4 * PAGE_SIZE
    assert alloc.alloc_frame() == PAGE_SIZE
