"""Unit and integration tests for the optional data cache."""

import pytest

from repro.errors import ConfigError
from repro.hw.cache import DataCache


class TestDataCacheUnit:
    def test_miss_then_hit(self):
        cache = DataCache()
        assert cache.access(0x100) == cache.miss_cycles
        assert cache.access(0x100) == cache.hit_cycles
        assert (cache.hits, cache.misses) == (1, 1)

    def test_same_line_different_offset_hits(self):
        cache = DataCache(line_bytes=32)
        cache.access(0x100)
        assert cache.access(0x108) == cache.hit_cycles

    def test_conflict_eviction(self):
        cache = DataCache(n_lines=4, line_bytes=32)
        cache.access(0)
        cache.access(4 * 32)  # same index, different tag: evicts
        assert cache.access(0) == cache.miss_cycles

    def test_flush_clears(self):
        cache = DataCache()
        cache.access(0)
        cache.flush()
        assert not cache.contains(0)
        assert cache.flushes == 1

    def test_invalidate_range(self):
        cache = DataCache(line_bytes=32)
        for paddr in (0, 32, 64, 96):
            cache.access(paddr)
        dropped = cache.invalidate_range(30, 40)  # touches lines 0-2
        assert dropped == 3
        assert not cache.contains(0)
        assert cache.contains(96)

    def test_invalidate_empty_range(self):
        cache = DataCache()
        assert cache.invalidate_range(0, 0) == 0

    def test_hit_rate(self):
        cache = DataCache()
        cache.access(0)
        cache.access(0)
        cache.access(4096)
        assert cache.hit_rate == pytest.approx(1 / 3)

    def test_geometry_validation(self):
        with pytest.raises(ConfigError):
            DataCache(n_lines=3)
        with pytest.raises(ConfigError):
            DataCache(line_bytes=24)


class TestCacheOnTheMachine:
    def make(self, data_cache=True):
        from tests.conftest import ready_channel

        return ready_channel("keyed", data_cache=data_cache)

    def test_machine_builds_with_cache(self):
        ws, proc, src, dst, chan = self.make()
        assert ws.data_cache is not None
        assert ws.cpu.cache is ws.data_cache

    def test_repeated_ram_access_gets_cheaper(self):
        from repro.hw.isa import Addr, Halt, Load, assemble

        ws, proc, src, dst, chan = self.make()
        program = assemble([Load("t0", Addr(None, src.vaddr)), Halt()])
        thread1 = proc.new_thread(program)
        start = ws.now
        ws.run_thread(thread1)
        cold = ws.now - start
        thread2 = proc.new_thread(program)
        start = ws.now
        ws.run_thread(thread2)
        warm = ws.now - start
        assert warm < cold

    def test_dma_invalidates_destination_lines(self):
        from repro.hw.isa import Addr, Halt, Load, assemble

        ws, proc, src, dst, chan = self.make()
        # Warm the destination line in the cache.
        warm_prog = assemble([Load("t0", Addr(None, dst.vaddr)), Halt()])
        ws.run_thread(proc.new_thread(warm_prog))
        assert ws.data_cache.contains(dst.paddr)
        # A DMA lands on it: the line must be invalidated.
        ws.ram.write(src.paddr, b"fresh")
        result = chan.dma(src.vaddr, dst.vaddr, 64)
        assert result.ok
        assert not ws.data_cache.contains(dst.paddr)
        # The next load therefore sees the DMA'd data (coherence).
        check = assemble([Load("v0", Addr(None, dst.vaddr)), Halt()])
        thread = proc.new_thread(check)
        ws.run_thread(thread)
        assert thread.reg("v0") == int.from_bytes(b"fresh\0\0\0",
                                                  "little")

    def test_context_switch_cold_caches(self):
        from repro.hw.isa import Halt, Mov, assemble
        from repro.os.scheduler import RoundRobinPolicy

        ws, proc, src, dst, chan = self.make()
        other = ws.kernel.spawn("other")
        ws.data_cache.access(0x100)
        scheduler = ws.make_scheduler(RoundRobinPolicy(1))
        scheduler.add(proc, proc.new_thread(
            assemble([Mov("t0", 1), Halt()])))
        scheduler.add(other, other.new_thread(
            assemble([Mov("t0", 2), Halt()])))
        scheduler.run()
        assert ws.data_cache.flushes >= 1

    def test_cache_off_by_default_preserves_table1(self):
        """The calibrated Table 1 numbers assume no cache model."""
        from repro.analysis.trends import measure_initiation_us

        assert measure_initiation_us(
            "extshadow", iterations=5) == pytest.approx(1.1, abs=0.15)
