"""Unit tests for page tables, PTEs, and protection."""

import pytest

from repro.errors import AddressError, PageFault, ProtectionFault
from repro.hw.pagetable import (
    PAGE_SIZE,
    PageTable,
    Perm,
    Pte,
    page_base,
    page_offset,
    pages_covering,
    vpn_of,
)

V = 0x10000
P = 0x40000


def table_with(perm=Perm.RW, user=True, uncached=False):
    table = PageTable("t")
    table.map_page(V, Pte(P, perm, user, uncached))
    return table


def test_translate_offset_preserved():
    table = table_with()
    assert table.translate(V + 0x123, "read") == P + 0x123


def test_unmapped_page_faults():
    table = PageTable()
    with pytest.raises(PageFault):
        table.translate(V, "read")


def test_read_only_blocks_writes():
    table = table_with(Perm.READ)
    assert table.translate(V, "read") == P
    with pytest.raises(ProtectionFault):
        table.translate(V, "write")


def test_write_only_blocks_reads():
    table = table_with(Perm.WRITE)
    with pytest.raises(ProtectionFault):
        table.translate(V, "read")


def test_kernel_mode_bypasses_perm_checks():
    table = table_with(Perm.NONE)
    assert table.translate(V, "write", user_mode=False) == P


def test_kernel_only_page_invisible_to_user():
    table = table_with(Perm.RW, user=False)
    with pytest.raises(PageFault):
        table.translate(V, "read")
    assert table.translate(V, "read", user_mode=False) == P


def test_pte_rejects_unaligned_frame():
    with pytest.raises(AddressError):
        Pte(0x1234, Perm.RW)


def test_pte_allows_unknown_access_rejected():
    with pytest.raises(ValueError):
        Pte(P, Perm.RW).allows("execute")


def test_map_unaligned_vaddr_rejected():
    table = PageTable()
    with pytest.raises(AddressError):
        table.map_page(V + 1, Pte(P, Perm.RW))


def test_double_map_rejected():
    table = table_with()
    with pytest.raises(AddressError):
        table.map_page(V, Pte(P, Perm.RW))


def test_map_range_multiple_pages():
    table = PageTable()
    table.map_range(V, P, 3 * PAGE_SIZE, Perm.RW)
    assert len(table) == 3
    assert table.translate(V + 2 * PAGE_SIZE + 5, "read") == (
        P + 2 * PAGE_SIZE + 5)


def test_map_range_rejects_partial_page():
    table = PageTable()
    with pytest.raises(AddressError):
        table.map_range(V, P, PAGE_SIZE + 1, Perm.RW)


def test_unmap():
    table = table_with()
    pte = table.unmap_page(V)
    assert pte.pframe == P
    with pytest.raises(PageFault):
        table.translate(V, "read")


def test_unmap_missing_faults():
    with pytest.raises(PageFault):
        PageTable().unmap_page(V)


def test_protect_page_changes_perm():
    table = table_with(Perm.RW)
    table.protect_page(V, Perm.READ)
    with pytest.raises(ProtectionFault):
        table.translate(V, "write")


def test_protect_preserves_flags():
    table = table_with(Perm.RW, uncached=True)
    table.protect_page(V, Perm.READ)
    assert table.lookup(V).uncached


def test_check_range_whole_span():
    table = PageTable()
    table.map_range(V, P, 2 * PAGE_SIZE, Perm.RW)
    table.check_range(V + 100, PAGE_SIZE, "write")  # crosses a boundary
    with pytest.raises(PageFault):
        table.check_range(V + PAGE_SIZE, 2 * PAGE_SIZE, "read")


def test_check_range_perm_enforced_every_page():
    table = PageTable()
    table.map_page(V, Pte(P, Perm.RW))
    table.map_page(V + PAGE_SIZE, Pte(P + PAGE_SIZE, Perm.READ))
    with pytest.raises(ProtectionFault):
        table.check_range(V, 2 * PAGE_SIZE, "write")


def test_contains_and_iteration():
    table = table_with()
    assert V in table
    assert (V + PAGE_SIZE) not in table
    pages = list(table.mapped_pages())
    assert pages[0][0] == vpn_of(V)


def test_helpers():
    assert page_base(V + 5) == V
    assert page_offset(V + 5) == 5
    assert list(pages_covering(0, 1)) == [0]
    assert list(pages_covering(PAGE_SIZE - 1, 2)) == [0, 1]
    with pytest.raises(AddressError):
        list(pages_covering(0, 0))
