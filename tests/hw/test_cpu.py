"""Unit tests for the CPU model: execution, memory paths, traps, PAL."""

import pytest

from repro.errors import ConfigError
from repro.hw.bus import Bus, TURBOCHANNEL_12_5
from repro.hw.cpu import Cpu, CpuCosts, StepStatus, Thread
from repro.hw.device import MmioDevice
from repro.hw.isa import (
    Add,
    Addr,
    Beq,
    Bne,
    CallPal,
    Halt,
    Jump,
    Label,
    Load,
    Mb,
    Mov,
    Nop,
    Store,
    Syscall,
    assemble,
)
from repro.hw.memory import PhysicalMemory
from repro.hw.mmu import Mmu
from repro.hw.pagetable import PAGE_SIZE, PageTable, Perm, Pte
from repro.hw.tlb import Tlb
from repro.hw.writebuffer import WriteBuffer
from repro.sim.clock import Clock
from repro.sim.engine import Simulator
from repro.units import kib, mhz

RAM_V = 0x10000          # virtual base of a mapped RAM page
RAM_P = 0x4000           # its physical frame
DEV_V = 0x20000          # virtual base of a mapped device page
DEV_BASE = 1 << 40       # device physical window


class RecordingDevice(MmioDevice):
    """Records accesses in arrival order; reads echo offset + 1000."""

    def __init__(self):
        super().__init__("rec")
        self.log = []

    def mmio_read(self, offset, ctx):
        self.log.append(("R", offset, ctx.issuer))
        return offset + 1000

    def mmio_write(self, offset, value, ctx):
        self.log.append(("W", offset, value))

    def mmio_exchange(self, offset, value, ctx):
        self.log.append(("X", offset, value))
        return 777


def make_machine(relaxed=False, collapsing=True):
    sim = Simulator()
    ram = PhysicalMemory(kib(64))
    bus = Bus(ram, TURBOCHANNEL_12_5)
    device = RecordingDevice()
    bus.attach(device, DEV_BASE, PAGE_SIZE)
    mmu = Mmu(Tlb(), walk_cost=0)
    wb = WriteBuffer(relaxed=relaxed, collapsing=collapsing)
    cpu = Cpu(sim, Clock("cpu", mhz(150)), mmu, bus, wb, CpuCosts())
    table = PageTable("test")
    table.map_page(RAM_V, Pte(RAM_P, Perm.RW))
    table.map_page(DEV_V, Pte(DEV_BASE, Perm.RW, uncached=True))
    return sim, ram, bus, device, cpu, table


def run(cpu, table, instructions, regs=None):
    thread = Thread(pid=1, page_table=table,
                    program=assemble(list(instructions) + [Halt()]))
    if regs:
        for name, value in regs.items():
            thread.set_reg(name, value)
    status = cpu.run(thread)
    return thread, status


def test_mov_and_add():
    _, _, _, _, cpu, table = make_machine()
    thread, status = run(cpu, table, [
        Mov("t0", 5), Add("t1", "t0", 7), Add("t2", "t1", "t0")])
    assert status is StepStatus.HALTED
    assert thread.reg("t1") == 12
    assert thread.reg("t2") == 17


def test_add_wraps_64_bits():
    _, _, _, _, cpu, table = make_machine()
    thread, _ = run(cpu, table, [
        Mov("t0", (1 << 64) - 1), Add("t1", "t0", 2)])
    assert thread.reg("t1") == 1


def test_zero_register_reads_zero_and_ignores_writes():
    _, _, _, _, cpu, table = make_machine()
    thread, _ = run(cpu, table, [Mov("zero", 42), Add("t0", "zero", 1)])
    assert thread.reg("t0") == 1


def test_ram_store_load_roundtrip():
    _, ram, _, _, cpu, table = make_machine()
    thread, _ = run(cpu, table, [
        Store(Addr(None, RAM_V + 16), 0xABCD),
        Load("t0", Addr(None, RAM_V + 16))])
    assert thread.reg("t0") == 0xABCD
    assert ram.read_word(RAM_P + 16) == 0xABCD


def test_base_displacement_addressing():
    _, _, _, _, cpu, table = make_machine()
    thread, _ = run(cpu, table, [
        Store(Addr("a0", 8), 7), Load("t0", Addr("a0", 8))],
        regs={"a0": RAM_V})
    assert thread.reg("t0") == 7


def test_branches_and_labels():
    _, _, _, _, cpu, table = make_machine()
    thread, _ = run(cpu, table, [
        Mov("t0", 0),
        Label("loop"),
        Add("t0", "t0", 1),
        Bne("t0", 3, "loop"),
        Mov("t1", 99),
    ])
    assert thread.reg("t0") == 3
    assert thread.reg("t1") == 99


def test_beq_taken_and_not_taken():
    _, _, _, _, cpu, table = make_machine()
    thread, _ = run(cpu, table, [
        Beq(1, 1, "skip"), Mov("t0", 111), Label("skip"), Mov("t1", 5)])
    assert thread.reg("t0") == 0
    assert thread.reg("t1") == 5


def test_jump():
    _, _, _, _, cpu, table = make_machine()
    thread, _ = run(cpu, table, [
        Jump("end"), Mov("t0", 1), Label("end"), Nop()])
    assert thread.reg("t0") == 0


def test_uncached_store_is_posted_then_drained_by_load():
    _, _, _, device, cpu, table = make_machine()
    run(cpu, table, [
        Store(Addr(None, DEV_V + 8), 42),
        Load("t0", Addr(None, DEV_V + 16))])
    # Strong ordering: the store reaches the device before the load.
    assert device.log[0] == ("W", 8, 42)
    assert device.log[1][0] == "R"


def test_uncached_load_returns_device_value():
    _, _, _, _, cpu, table = make_machine()
    thread, _ = run(cpu, table, [Load("t0", Addr(None, DEV_V + 24))])
    assert thread.reg("t0") == 24 + 1000


def test_halt_flushes_pending_stores():
    _, _, _, device, cpu, table = make_machine()
    run(cpu, table, [Store(Addr(None, DEV_V), 1)])
    assert ("W", 0, 1) in device.log


def test_mb_flushes_pending_stores():
    _, _, _, device, cpu, table = make_machine()
    run(cpu, table, [Store(Addr(None, DEV_V), 5), Mb(), Nop()])
    assert device.log[0] == ("W", 0, 5)


def test_relaxed_load_bypasses_pending_store():
    _, _, _, device, cpu, table = make_machine(relaxed=True)
    run(cpu, table, [
        Store(Addr(None, DEV_V + 8), 42),
        Load("t0", Addr(None, DEV_V + 16))])
    # The load reached the device FIRST; the store drained at Halt.
    assert device.log[0][0] == "R"
    assert device.log[1] == ("W", 8, 42)


def test_relaxed_same_address_load_forwarded_never_reaches_device():
    _, _, _, device, cpu, table = make_machine(relaxed=True)
    thread, _ = run(cpu, table, [
        Store(Addr(None, DEV_V + 8), 42),
        Load("t0", Addr(None, DEV_V + 8)),
        Mb()])
    assert thread.reg("t0") == 42          # serviced by the buffer
    assert device.log == [("W", 8, 42)]    # only the eventual drain


def _cex():
    from repro.hw.isa import CompareExchange

    return CompareExchange("v0", Addr(None, DEV_V + 8), 64)


def test_compare_exchange_returns_old_value():
    _, _, _, device, cpu, table = make_machine()
    thread, _ = run(cpu, table, [_cex()])
    assert thread.reg("v0") == 777
    assert device.log == [("X", 8, 64)]


def test_compare_exchange_flushes_earlier_stores_first():
    _, _, _, device, cpu, table = make_machine()
    run(cpu, table, [Store(Addr(None, DEV_V), 5), _cex()])
    assert device.log == [("W", 0, 5), ("X", 8, 64)]


def test_fault_on_unmapped_address():
    _, _, _, _, cpu, table = make_machine()
    thread, status = run(cpu, table, [Load("t0", Addr(None, 0xDEAD0000))])
    assert status is StepStatus.FAULTED
    assert thread.fault is not None
    assert thread.fault.kind == "PageFault"


def test_fault_on_protection_violation():
    sim, _, _, _, cpu, table = make_machine()
    table.protect_page(RAM_V, Perm.READ)
    thread, status = run(cpu, table, [Store(Addr(None, RAM_V), 1)])
    assert status is StepStatus.FAULTED
    assert thread.fault.kind == "ProtectionFault"
    assert thread.fault.access == "write"


def test_faulted_thread_is_done():
    _, _, _, _, cpu, table = make_machine()
    thread, _ = run(cpu, table, [Load("t0", Addr(None, 0xDEAD0000))])
    assert thread.done
    assert cpu.step(thread) is StepStatus.FAULTED


def test_time_advances_monotonically():
    sim, _, _, _, cpu, table = make_machine()
    before = sim.now
    run(cpu, table, [Mov("t0", 1), Store(Addr(None, DEV_V), 2)])
    assert sim.now > before


def test_uncached_store_costs_more_than_mov():
    sim, _, _, _, cpu, table = make_machine()
    t0 = sim.now
    run(cpu, table, [Mov("t0", 1)])
    mov_cost = sim.now - t0
    t1 = sim.now
    run(cpu, table, [Store(Addr(None, DEV_V), 1)])
    store_cost = sim.now - t1
    assert store_cost > mov_cost


def test_syscall_dispatch_and_result():
    _, _, _, _, cpu, table = make_machine()

    def handler(thread, cpu_):
        return thread.reg("a0") + thread.reg("a1")

    cpu.register_syscall("sum", handler)
    thread, _ = run(cpu, table, [
        Mov("a0", 4), Mov("a1", 5), Syscall("sum")])
    assert thread.reg("v0") == 9


def test_syscall_unknown_raises():
    _, _, _, _, cpu, table = make_machine()
    with pytest.raises(ConfigError):
        run(cpu, table, [Syscall("nope")])


def test_syscall_charges_entry_and_exit():
    sim, _, _, _, cpu, table = make_machine()
    cpu.register_syscall("empty", lambda thread, cpu_: 0)
    t0 = sim.now
    run(cpu, table, [Syscall("empty")])
    elapsed = sim.now - t0
    expected_min = cpu.clock.cycles(
        cpu.costs.syscall_entry_cycles + cpu.costs.syscall_exit_cycles)
    assert elapsed >= expected_min


def test_pal_function_executes_and_returns():
    _, _, _, _, cpu, table = make_machine()
    pal = assemble([Mov("v0", 123)], name="p")
    cpu.install_pal_function("p", pal)
    thread, _ = run(cpu, table, [CallPal("p")])
    assert thread.reg("v0") == 123


def test_pal_uses_caller_registers():
    _, _, _, _, cpu, table = make_machine()
    pal = assemble([Add("v0", "a0", "a1")])
    cpu.install_pal_function("sum", pal)
    thread, _ = run(cpu, table, [Mov("a0", 3), Mov("a1", 4),
                                 CallPal("sum")])
    assert thread.reg("v0") == 7


def test_pal_respects_user_page_protection():
    _, _, _, _, cpu, table = make_machine()
    table.protect_page(RAM_V, Perm.READ)
    pal = assemble([Store(Addr(None, RAM_V), 9)])
    cpu.install_pal_function("bad", pal)
    thread, status = run(cpu, table, [CallPal("bad")])
    assert status is StepStatus.FAULTED


def test_pal_length_limit():
    _, _, _, _, cpu, table = make_machine()
    too_long = assemble([Nop()] * 17)
    with pytest.raises(ConfigError):
        cpu.install_pal_function("big", too_long)


def test_pal_may_not_nest_or_trap():
    _, _, _, _, cpu, table = make_machine()
    with pytest.raises(ConfigError):
        cpu.install_pal_function("t", assemble([Syscall("x")]))
    with pytest.raises(ConfigError):
        cpu.install_pal_function("t", assemble([CallPal("other")]))


def test_pal_completes_within_one_step():
    """The whole PAL body runs inside a single step() — uninterruptible."""
    _, _, _, device, cpu, table = make_machine()
    pal = assemble([
        Store(Addr(None, DEV_V), 1),
        Load("v0", Addr(None, DEV_V + 8)),
    ])
    cpu.install_pal_function("dma2", pal)
    thread = Thread(pid=1, page_table=table,
                    program=assemble([CallPal("dma2"), Halt()]))
    cpu.mmu.activate(table, flush=False)
    status = cpu.step(thread)  # ONE step
    assert status is StepStatus.RUNNING
    assert ("W", 0, 1) in device.log
    assert any(entry[0] == "R" for entry in device.log)


def test_unknown_pal_call_raises():
    _, _, _, _, cpu, table = make_machine()
    with pytest.raises(ConfigError):
        run(cpu, table, [CallPal("ghost")])


def test_run_budget_enforced():
    from repro.errors import ReproError

    _, _, _, _, cpu, table = make_machine()
    thread = Thread(pid=1, page_table=table, program=assemble([
        Label("spin"), Jump("spin")]))
    with pytest.raises(ReproError):
        cpu.run(thread, max_instructions=100)


def test_thread_restart():
    _, _, _, _, cpu, table = make_machine()
    thread, _ = run(cpu, table, [Mov("t0", 1)])
    assert thread.halted
    thread.restart()
    assert not thread.halted
    assert thread.pc == 0


def test_instruction_counters():
    _, _, _, _, cpu, table = make_machine()
    before = cpu.stats.counter("instructions").value
    run(cpu, table, [Mov("t0", 1), Nop()])
    assert cpu.stats.counter("instructions").value == before + 3  # + Halt
