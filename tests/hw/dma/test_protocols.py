"""Protocol FSM tests, method by method, via the replay harness."""

import pytest

from repro.hw.dma.protocols import (
    ExtendedShadowProtocol,
    FlashProtocol,
    KernelOnlyProtocol,
    KeyedProtocol,
    MappedOutProtocol,
    PalProtocol,
    PendingPairProtocol,
    RepeatedPassingProtocol,
)
from repro.hw.dma.protocols.keyed import (
    ARG_DESTINATION,
    ARG_SOURCE,
    pack_key_word,
    unpack_key_word,
)
from repro.hw.dma.status import STATUS_FAILURE, STATUS_PENDING
from repro.verify.interleave import AccessSpec, ProtocolHarness

SRC = 0x0000
DST = 0x2000
SIZE = 64
KEY = 0x5A5A5A


def harness(factory, **kw):
    return ProtocolHarness(factory, **kw)


def started(h):
    return h.engine.started_transfers()


class TestKernelOnly:
    def test_shadow_accesses_ignored(self):
        h = harness(KernelOnlyProtocol)
        h.deliver(AccessSpec(1, "store", DST, SIZE))
        assert h.deliver(AccessSpec(1, "load", SRC)) == STATUS_FAILURE
        assert h.deliver(AccessSpec(1, "exchange", SRC, SIZE)) == (
            STATUS_FAILURE)
        assert started(h) == []
        assert h.protocol.ignored_accesses == 3


class TestShrimp1:
    def test_exchange_starts_mapped_transfer(self):
        h = harness(MappedOutProtocol)
        h.engine.install_mapout(SRC, DST)
        status = h.deliver(AccessSpec(1, "exchange", SRC + 16, SIZE))
        assert status == SIZE
        record = started(h)[0]
        assert (record.psrc, record.pdst) == (SRC + 16, DST + 16)

    def test_unmapped_page_fails(self):
        h = harness(MappedOutProtocol)
        status = h.deliver(AccessSpec(1, "exchange", SRC, SIZE))
        assert status == STATUS_FAILURE
        assert h.protocol.unmapped_attempts == 1

    def test_plain_loads_and_stores_do_nothing(self):
        h = harness(MappedOutProtocol)
        h.engine.install_mapout(SRC, DST)
        h.deliver(AccessSpec(1, "store", SRC, SIZE))
        assert h.deliver(AccessSpec(1, "load", SRC)) == STATUS_FAILURE
        assert started(h) == []

    def test_destination_fixed_by_mapping(self):
        """A source page can only ever reach its mapped-out partner."""
        h = harness(MappedOutProtocol)
        h.engine.install_mapout(SRC, DST)
        h.deliver(AccessSpec(1, "exchange", SRC, SIZE))
        record = started(h)[0]
        assert record.pdst == DST


class TestShrimp2:
    def test_store_load_pair_starts(self):
        h = harness(PendingPairProtocol)
        h.deliver(AccessSpec(1, "store", DST, SIZE))
        status = h.deliver(AccessSpec(1, "load", SRC))
        assert status == SIZE
        record = started(h)[0]
        assert (record.psrc, record.pdst, record.size) == (SRC, DST, SIZE)

    def test_load_without_store_fails(self):
        h = harness(PendingPairProtocol)
        assert h.deliver(AccessSpec(1, "load", SRC)) == STATUS_FAILURE
        assert h.protocol.empty_loads == 1

    def test_second_store_overwrites_latch(self):
        h = harness(PendingPairProtocol)
        h.deliver(AccessSpec(1, "store", DST, SIZE))
        h.deliver(AccessSpec(2, "store", 0x4000, 128))
        h.deliver(AccessSpec(1, "load", SRC))
        record = started(h)[0]
        assert record.pdst == 0x4000  # the race the paper describes

    def test_race_mixes_arguments_without_abort(self):
        """A-store, B-store, A-load: A's source pairs with B's dest."""
        h = harness(PendingPairProtocol)
        h.deliver(AccessSpec(1, "store", DST, SIZE))
        h.deliver(AccessSpec(2, "store", 0x4000, 128))
        status = h.deliver(AccessSpec(1, "load", SRC))
        assert status != STATUS_FAILURE
        assert started(h)[0].pdst == 0x4000
        assert started(h)[0].psrc == SRC

    def test_abort_hook_prevents_the_race(self):
        h = harness(PendingPairProtocol)
        h.deliver(AccessSpec(1, "store", DST, SIZE))
        h.protocol.on_abort_pending()  # the kernel modification
        assert h.deliver(AccessSpec(1, "load", SRC)) == STATUS_FAILURE
        assert started(h) == []

    def test_latch_consumed_by_load(self):
        h = harness(PendingPairProtocol)
        h.deliver(AccessSpec(1, "store", DST, SIZE))
        h.deliver(AccessSpec(1, "load", SRC))
        assert h.deliver(AccessSpec(1, "load", SRC)) == STATUS_FAILURE


class TestPal:
    def test_same_hardware_as_shrimp2(self):
        assert issubclass(PalProtocol, PendingPairProtocol)
        assert PalProtocol.name == "pal"

    def test_pair_starts(self):
        h = harness(PalProtocol)
        h.deliver(AccessSpec(1, "store", DST, SIZE))
        assert h.deliver(AccessSpec(1, "load", SRC)) == SIZE


class TestFlash:
    def test_pair_starts_when_pid_stable(self):
        h = harness(FlashProtocol)
        h.engine.current_pid = 1
        h.deliver(AccessSpec(1, "store", DST, SIZE))
        assert h.deliver(AccessSpec(1, "load", SRC)) == SIZE

    def test_context_switch_invalidates_latch(self):
        h = harness(FlashProtocol)
        h.engine.current_pid = 1
        h.deliver(AccessSpec(1, "store", DST, SIZE))
        # Kernel hook announces a switch to pid 2.
        h.engine.current_pid = 2
        h.protocol.on_context_switch(2)
        assert h.deliver(AccessSpec(2, "load", 0x4000)) == STATUS_FAILURE
        assert h.protocol.tag_mismatches == 1
        assert started(h) == []

    def test_without_hook_degenerates_to_shrimp2_race(self):
        h = harness(FlashProtocol)
        # current_pid never updated: both processes tag identically.
        h.deliver(AccessSpec(1, "store", DST, SIZE))
        h.deliver(AccessSpec(2, "store", 0x4000, 128))
        status = h.deliver(AccessSpec(1, "load", SRC))
        assert status != STATUS_FAILURE
        assert started(h)[0].pdst == 0x4000  # mixed arguments

    def test_empty_load_fails(self):
        h = harness(FlashProtocol)
        assert h.deliver(AccessSpec(1, "load", SRC)) == STATUS_FAILURE


class TestKeyed:
    def setup_harness(self):
        h = harness(KeyedProtocol)
        h.install_key(0, KEY)
        return h

    def full_sequence(self, h, pid=1, key=KEY, ctx=0, src=SRC, dst=DST):
        h.deliver(AccessSpec(pid, "store", dst,
                             pack_key_word(key, ctx, ARG_DESTINATION)))
        h.deliver(AccessSpec(pid, "store", src,
                             pack_key_word(key, ctx, ARG_SOURCE)))
        h.deliver(AccessSpec(pid, "ctx-store", data=SIZE, ctx_id=ctx))
        return h.deliver(AccessSpec(pid, "ctx-load", ctx_id=ctx))

    def test_fig3_sequence_starts(self):
        h = self.setup_harness()
        assert self.full_sequence(h) == SIZE
        record = started(h)[0]
        assert (record.psrc, record.pdst, record.size) == (SRC, DST, SIZE)
        assert record.ctx_id == 0

    def test_wrong_key_arguments_dropped(self):
        h = self.setup_harness()
        status = self.full_sequence(h, key=KEY ^ 1)
        assert status == STATUS_FAILURE  # args never latched
        assert h.protocol.key_rejections == 2
        assert started(h) == []

    def test_no_key_installed_rejects(self):
        h = harness(KeyedProtocol)  # no key
        assert self.full_sequence(h) == STATUS_FAILURE

    def test_zero_key_never_matches(self):
        h = harness(KeyedProtocol)
        status = self.full_sequence(h, key=0)
        assert status == STATUS_FAILURE

    def test_argument_order_is_flexible(self):
        """The arg selector makes stores self-describing (§3.1 impl)."""
        h = self.setup_harness()
        h.deliver(AccessSpec(1, "store", SRC,
                             pack_key_word(KEY, 0, ARG_SOURCE)))
        h.deliver(AccessSpec(1, "store", DST,
                             pack_key_word(KEY, 0, ARG_DESTINATION)))
        h.deliver(AccessSpec(1, "ctx-store", data=SIZE, ctx_id=0))
        assert h.deliver(AccessSpec(1, "ctx-load", ctx_id=0)) == SIZE

    def test_interrupted_sequence_resumes_safely(self):
        """Arguments survive in the private context across preemption."""
        h = self.setup_harness()
        h.install_key(1, 0xB0B)
        h.deliver(AccessSpec(1, "store", DST,
                             pack_key_word(KEY, 0, ARG_DESTINATION)))
        # Preemption: process 2 runs a whole initiation in context 1.
        h.deliver(AccessSpec(2, "store", 0x6000,
                             pack_key_word(0xB0B, 1, ARG_DESTINATION)))
        h.deliver(AccessSpec(2, "store", 0x4000,
                             pack_key_word(0xB0B, 1, ARG_SOURCE)))
        h.deliver(AccessSpec(2, "ctx-store", data=128, ctx_id=1))
        assert h.deliver(AccessSpec(2, "ctx-load", ctx_id=1)) == 128
        # Process 1 resumes; its destination is still latched.
        h.deliver(AccessSpec(1, "store", SRC,
                             pack_key_word(KEY, 0, ARG_SOURCE)))
        h.deliver(AccessSpec(1, "ctx-store", data=SIZE, ctx_id=0))
        assert h.deliver(AccessSpec(1, "ctx-load", ctx_id=0)) == SIZE
        records = started(h)
        assert (records[0].psrc, records[0].pdst) == (0x4000, 0x6000)
        assert (records[1].psrc, records[1].pdst) == (SRC, DST)

    def test_context_load_with_nothing_latched_reports_failure(self):
        h = self.setup_harness()
        assert h.deliver(AccessSpec(1, "ctx-load", ctx_id=0)) == (
            STATUS_FAILURE)

    def test_shadow_loads_play_no_role(self):
        h = self.setup_harness()
        assert h.deliver(AccessSpec(1, "load", SRC)) == STATUS_FAILURE

    def test_context_store_only_reaches_size_register(self):
        h = self.setup_harness()
        h.deliver(AccessSpec(1, "ctx-store", data=999, ctx_id=0))
        ctx = h.engine.contexts[0]
        assert ctx.size == 999
        assert ctx.src is None and ctx.dst is None


class TestKeyWord:
    def test_pack_unpack_roundtrip(self):
        word = pack_key_word(0xABCDEF, 5, ARG_SOURCE)
        assert unpack_key_word(word) == (0xABCDEF, 5, ARG_SOURCE)

    def test_field_overflow_rejected(self):
        from repro.errors import ConfigError
        from repro.hw.dma.protocols.keyed import KEY_FIELD_BITS

        with pytest.raises(ConfigError):
            pack_key_word(1 << KEY_FIELD_BITS, 0, 0)
        with pytest.raises(ConfigError):
            pack_key_word(1, 8, 0)
        with pytest.raises(ConfigError):
            pack_key_word(1, 0, 2)

    def test_key_field_is_60_bits(self):
        from repro.hw.dma.protocols.keyed import KEY_FIELD_BITS

        assert KEY_FIELD_BITS == 60  # "close to 60 bits" (§3.1)


class TestExtendedShadow:
    def test_two_instruction_initiation(self):
        h = harness(ExtendedShadowProtocol)
        h.deliver(AccessSpec(1, "store", DST, SIZE, ctx_id=1))
        status = h.deliver(AccessSpec(1, "load", SRC, ctx_id=1))
        assert status == SIZE
        record = started(h)[0]
        assert (record.psrc, record.pdst, record.ctx_id) == (SRC, DST, 1)

    def test_contexts_isolated(self):
        h = harness(ExtendedShadowProtocol)
        h.deliver(AccessSpec(1, "store", DST, SIZE, ctx_id=0))
        h.deliver(AccessSpec(2, "store", 0x4000, 128, ctx_id=1))
        assert h.deliver(AccessSpec(1, "load", SRC, ctx_id=0)) == SIZE
        assert h.deliver(AccessSpec(2, "load", 0x6000, ctx_id=1)) == 128
        records = started(h)
        assert records[0].pdst == DST
        assert records[1].pdst == 0x4000

    def test_load_with_empty_context_fails(self):
        h = harness(ExtendedShadowProtocol)
        assert h.deliver(AccessSpec(1, "load", SRC, ctx_id=2)) == (
            STATUS_FAILURE)

    def test_latch_consumed(self):
        h = harness(ExtendedShadowProtocol)
        h.deliver(AccessSpec(1, "store", DST, SIZE, ctx_id=0))
        h.deliver(AccessSpec(1, "load", SRC, ctx_id=0))
        assert h.deliver(AccessSpec(1, "load", SRC, ctx_id=0)) == (
            STATUS_FAILURE)

    def test_single_latch_variant_checks_ctx_match(self):
        h = ProtocolHarness(lambda: ExtendedShadowProtocol(
            per_context=False))
        h.deliver(AccessSpec(1, "store", DST, SIZE, ctx_id=0))
        status = h.deliver(AccessSpec(2, "load", SRC, ctx_id=1))
        assert status == STATUS_FAILURE  # §3.2 error-code path
        assert h.protocol.ctx_mismatches == 1
        assert started(h) == []

    def test_single_latch_variant_same_ctx_starts(self):
        h = ProtocolHarness(lambda: ExtendedShadowProtocol(
            per_context=False))
        h.deliver(AccessSpec(1, "store", DST, SIZE, ctx_id=1))
        assert h.deliver(AccessSpec(1, "load", SRC, ctx_id=1)) == SIZE


class TestRepeated5:
    def stream(self, pid=1, src=SRC, dst=DST, size=SIZE):
        return [
            AccessSpec(pid, "store", dst, size),
            AccessSpec(pid, "load", src),
            AccessSpec(pid, "store", dst, size),
            AccessSpec(pid, "load", src),
            AccessSpec(pid, "load", dst),
        ]

    def test_clean_sequence_starts(self):
        h = harness(lambda: RepeatedPassingProtocol(5))
        statuses = [h.deliver(a) for a in self.stream()]
        assert statuses[1] == STATUS_PENDING
        assert statuses[3] == STATUS_PENDING
        assert statuses[4] == SIZE
        record = started(h)[0]
        assert (record.psrc, record.pdst, record.size) == (SRC, DST, SIZE)

    def test_contributors_recorded(self):
        h = harness(lambda: RepeatedPassingProtocol(5))
        for access in self.stream(pid=3):
            h.deliver(access)
        assert h.protocol.completed_contributors == [(3, 3, 3, 3, 3)]

    def test_wrong_repeat_address_resets(self):
        h = harness(lambda: RepeatedPassingProtocol(5))
        h.deliver(AccessSpec(1, "store", DST, SIZE))
        h.deliver(AccessSpec(1, "load", SRC))
        h.deliver(AccessSpec(1, "store", 0x4000, SIZE))  # wrong dst
        status = h.deliver(AccessSpec(1, "load", SRC))
        # The wrong store opened a fresh attempt (dst=0x4000); this load
        # is its position-1 source load, hence PENDING, not a start.
        assert status == STATUS_PENDING
        assert started(h) == []

    def test_size_must_repeat(self):
        h = harness(lambda: RepeatedPassingProtocol(5))
        h.deliver(AccessSpec(1, "store", DST, SIZE))
        h.deliver(AccessSpec(1, "load", SRC))
        h.deliver(AccessSpec(1, "store", DST, SIZE + 8))  # wrong size
        h.deliver(AccessSpec(1, "load", SRC))
        h.deliver(AccessSpec(1, "load", DST))
        assert started(h) == []

    def test_out_of_order_load_fails(self):
        h = harness(lambda: RepeatedPassingProtocol(5))
        assert h.deliver(AccessSpec(1, "load", SRC)) == STATUS_FAILURE

    def test_retry_after_failure_succeeds(self):
        h = harness(lambda: RepeatedPassingProtocol(5))
        h.deliver(AccessSpec(1, "store", DST, SIZE))
        h.deliver(AccessSpec(1, "load", SRC))
        # Interference resets the recognizer mid-way.
        h.deliver(AccessSpec(2, "store", 0x4000, 8))
        # The victim's remaining accesses now mismatch and fail...
        for access in self.stream()[2:]:
            h.deliver(access)
        assert started(h) == []
        # ...so it retries from scratch, and succeeds.
        for access in self.stream():
            status = h.deliver(access)
        assert status == SIZE
        assert len(started(h)) == 1

    def test_final_load_targets_destination(self):
        """The 5th access repeats the *destination* — which an adversary
        without write access to it cannot issue; this is what closes the
        Fig. 6 steal on the 5-variant."""
        h = harness(lambda: RepeatedPassingProtocol(5))
        statuses = [h.deliver(a) for a in self.stream()]
        assert statuses[4] == SIZE
        assert h.protocol.pattern == ("S", "L", "S", "L", "L")


class TestRepeated3:
    def stream(self, pid=1, src=SRC, dst=DST):
        return [
            AccessSpec(pid, "load", src),
            AccessSpec(pid, "store", dst, SIZE),
            AccessSpec(pid, "load", src),
        ]

    def test_clean_sequence_starts(self):
        h = harness(lambda: RepeatedPassingProtocol(3))
        statuses = [h.deliver(a) for a in self.stream()]
        assert statuses[0] == STATUS_PENDING
        assert statuses[2] == SIZE

    def test_mismatched_third_load_becomes_new_attempt(self):
        h = harness(lambda: RepeatedPassingProtocol(3))
        h.deliver(AccessSpec(1, "load", SRC))
        h.deliver(AccessSpec(1, "store", DST, SIZE))
        status = h.deliver(AccessSpec(1, "load", 0x4000))
        assert status == STATUS_PENDING
        assert started(h) == []


class TestRepeated4:
    def test_clean_sequence_starts(self):
        h = harness(lambda: RepeatedPassingProtocol(4))
        h.deliver(AccessSpec(1, "store", DST, SIZE))
        h.deliver(AccessSpec(1, "load", SRC))
        h.deliver(AccessSpec(1, "store", DST, SIZE))
        assert h.deliver(AccessSpec(1, "load", SRC)) == SIZE

    def test_wrong_final_source_resets(self):
        h = harness(lambda: RepeatedPassingProtocol(4))
        h.deliver(AccessSpec(1, "store", DST, SIZE))
        h.deliver(AccessSpec(1, "load", SRC))
        h.deliver(AccessSpec(1, "store", DST, SIZE))
        assert h.deliver(AccessSpec(1, "load", 0x4000)) == STATUS_FAILURE
        assert started(h) == []


def test_invalid_variant_rejected():
    from repro.errors import ConfigError

    with pytest.raises(ConfigError):
        RepeatedPassingProtocol(6)


def test_protocol_requires_attachment():
    protocol = RepeatedPassingProtocol(5)
    with pytest.raises(RuntimeError):
        _ = protocol.engine
