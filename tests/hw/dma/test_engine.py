"""Unit tests for the DMA engine device: windows, privileges, records."""

import pytest

from repro.errors import ConfigError, DeviceError
from repro.hw.device import AccessContext
from repro.hw.dma.engine import (
    DmaEngine,
    REG_ABORT,
    REG_CURRENT_PID,
    REG_DESTINATION,
    REG_MAPOUT_DST,
    REG_MAPOUT_SRC,
    REG_SIZE,
    REG_SOURCE,
    REG_STATUS,
)
from repro.hw.dma.protocols.shrimp2 import PendingPairProtocol
from repro.hw.dma.status import STATUS_FAILURE
from repro.hw.memory import PhysicalMemory
from repro.hw.pagetable import PAGE_SIZE
from repro.sim.engine import Simulator
from repro.units import kib

USER = AccessContext(issuer=1, kernel=False, when=0)
KERNEL = AccessContext(issuer=None, kernel=True, when=0)


def make_engine():
    sim = Simulator()
    ram = PhysicalMemory(kib(64))
    engine = DmaEngine(sim, ram, PendingPairProtocol())
    return sim, ram, engine


def control(engine, reg):
    return engine.layout.control_page_offset + reg


def key_page(engine, ctx_id):
    return engine.layout.key_page_offset + ctx_id * 8


def test_kernel_register_dma_fig1_sequence():
    sim, ram, engine = make_engine()
    ram.write(0x100, b"kernel dma")
    engine.mmio_write(control(engine, REG_SOURCE), 0x100, KERNEL)
    engine.mmio_write(control(engine, REG_DESTINATION), 0x800, KERNEL)
    engine.mmio_write(control(engine, REG_SIZE), 10, KERNEL)
    status = engine.mmio_read(control(engine, REG_STATUS), KERNEL)
    assert status != STATUS_FAILURE
    sim.run()
    assert ram.read(0x800, 10) == b"kernel dma"
    assert engine.initiations[-1].via == "kernel"


def test_kernel_dma_bad_range_rejected():
    _, _, engine = make_engine()
    engine.mmio_write(control(engine, REG_SOURCE), 1 << 30, KERNEL)
    engine.mmio_write(control(engine, REG_DESTINATION), 0, KERNEL)
    engine.mmio_write(control(engine, REG_SIZE), 8, KERNEL)
    status = engine.mmio_read(control(engine, REG_STATUS), KERNEL)
    assert status == STATUS_FAILURE
    assert not engine.initiations[-1].ok


def test_control_page_ignores_user_accesses():
    _, _, engine = make_engine()
    engine.mmio_write(control(engine, REG_SOURCE), 0x100, USER)
    assert engine.mmio_read(control(engine, REG_SOURCE), KERNEL) == 0
    assert engine.protocol_violations == 1
    assert engine.mmio_read(control(engine, REG_STATUS), USER) == (
        STATUS_FAILURE)


def test_key_table_kernel_only():
    _, _, engine = make_engine()
    engine.mmio_write(key_page(engine, 2), 0xABC, KERNEL)
    assert engine.key_table[2] == 0xABC
    assert engine.mmio_read(key_page(engine, 2), KERNEL) == 0xABC
    # User writes are dropped, user reads denied.
    engine.mmio_write(key_page(engine, 2), 0x666, USER)
    assert engine.key_table[2] == 0xABC
    assert engine.mmio_read(key_page(engine, 2), USER) == STATUS_FAILURE


def test_current_pid_register_forwards_to_protocol():
    _, _, engine = make_engine()
    engine.mmio_write(control(engine, REG_CURRENT_PID), 42, KERNEL)
    assert engine.current_pid == 42
    assert engine.mmio_read(control(engine, REG_CURRENT_PID), KERNEL) == 42


def test_abort_register_clears_pending():
    _, _, engine = make_engine()
    shadow = engine.layout.shadow_offset + 0x800
    engine.mmio_write(shadow, 64, USER)  # latch a pending pair
    assert engine.protocol.pending is not None
    engine.mmio_write(control(engine, REG_ABORT), 1, KERNEL)
    assert engine.protocol.pending is None
    assert engine.protocol.aborts == 1


def test_mapout_registers_install_entry():
    _, _, engine = make_engine()
    engine.mmio_write(control(engine, REG_MAPOUT_SRC), 0x2000, KERNEL)
    engine.mmio_write(control(engine, REG_MAPOUT_DST), 0x6000, KERNEL)
    assert engine.mapout_destination(0x2000 + 12) == 0x6000 + 12


def test_mapout_dst_without_src_raises():
    _, _, engine = make_engine()
    with pytest.raises(DeviceError):
        engine.mmio_write(control(engine, REG_MAPOUT_DST), 0x6000, KERNEL)


def test_try_start_validates_endpoints():
    _, _, engine = make_engine()
    assert engine.try_start(0, 1 << 35, 64) == STATUS_FAILURE
    assert engine.try_start(1 << 35, 0, 64) == STATUS_FAILURE
    assert engine.try_start(0, 256, 0) == STATUS_FAILURE
    assert engine.try_start(0, 256, 64) != STATUS_FAILURE


def test_try_start_records_context_status():
    sim, _, engine = make_engine()
    ctx = engine.contexts[0]
    status = engine.try_start(0, 256, 64, ctx=ctx, issuer=9)
    assert status == 64
    assert ctx.transfer is not None
    sim.run()
    assert ctx.status_word(sim.now) == 0  # complete


def test_failed_start_sets_context_failed():
    _, _, engine = make_engine()
    ctx = engine.contexts[1]
    engine.try_start(0, 1 << 35, 64, ctx=ctx)
    assert ctx.failed
    assert ctx.status_word(0) == STATUS_FAILURE


def test_started_transfers_filtering():
    _, _, engine = make_engine()
    engine.try_start(0, 256, 64)
    engine.try_start(0, 1 << 35, 64)
    assert len(engine.initiations) == 2
    assert len(engine.started_transfers()) == 1


def test_assign_and_release_context():
    _, _, engine = make_engine()
    ctx = engine.assign_context(2, pid=7)
    engine.install_key(2, 0x123)
    assert ctx.owner_pid == 7
    engine.release_context(2)
    assert engine.contexts[2].owner_pid is None
    assert 2 not in engine.key_table


def test_bad_context_ids_rejected():
    _, _, engine = make_engine()
    with pytest.raises(ConfigError):
        engine.assign_context(99, 1)
    with pytest.raises(ConfigError):
        engine.install_key(-1, 5)


def test_reset_scrubs_everything():
    _, _, engine = make_engine()
    engine.install_key(0, 0x42)
    engine.install_mapout(0x2000, 0x6000)
    engine.try_start(0, 256, 64)
    engine.mmio_write(control(engine, REG_CURRENT_PID), 5, KERNEL)
    engine.reset()
    assert engine.key_table == {}
    assert engine.mapout_table == {}
    assert engine.initiations == []
    assert engine.current_pid == -1


def test_ram_too_large_for_shadow_field_rejected():
    from repro.hw.dma.shadow import ShadowLayout

    sim = Simulator()
    ram = PhysicalMemory(1 << 20)
    tiny = ShadowLayout(ctx_shift=16, shadow_offset=1 << 36)
    with pytest.raises(ConfigError):
        DmaEngine(sim, ram, PendingPairProtocol(), layout=tiny)


def test_unmapped_offset_raises():
    _, _, engine = make_engine()
    bogus = engine.layout.control_page_offset + PAGE_SIZE
    with pytest.raises(DeviceError):
        engine.mmio_read(bogus, KERNEL)


def test_exchange_outside_shadow_rejected():
    _, _, engine = make_engine()
    with pytest.raises(DeviceError):
        engine.mmio_exchange(0, 1, USER)
