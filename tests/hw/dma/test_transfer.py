"""Unit tests for the DMA data mover."""

import pytest

from repro.errors import ConfigError
from repro.hw.dma.transfer import DmaTransferEngine, Transfer
from repro.hw.memory import PhysicalMemory
from repro.sim.engine import Simulator
from repro.units import kib, mbps, ns, us


def make_engine(bandwidth=mbps(400), startup=ns(200)):
    sim = Simulator()
    ram = PhysicalMemory(kib(64))
    engine = DmaTransferEngine(sim, bandwidth, startup, ram.copy)
    return sim, ram, engine


def test_transfer_moves_bytes_at_completion():
    sim, ram, engine = make_engine()
    ram.write(0, b"payload!")
    transfer = engine.start(0, 256, 8)
    assert ram.read(256, 8) == bytes(8)  # not yet
    sim.run()
    assert transfer.completed
    assert ram.read(256, 8) == b"payload!"


def test_duration_includes_startup_and_bandwidth():
    _, _, engine = make_engine(bandwidth=mbps(400), startup=ns(200))
    duration = engine.duration_of(4000)
    # 4000 B = 32000 bits at 400 Mb/s = 80 us, plus 200 ns startup.
    assert duration == us(80) + ns(200)


def test_remaining_counts_down():
    sim, _, engine = make_engine(startup=0)
    transfer = engine.start(0, 256, 1000)
    assert transfer.remaining(sim.now) == 1000
    halfway = transfer.started_at + transfer.duration // 2
    assert 400 <= transfer.remaining(halfway) <= 600
    assert transfer.remaining(transfer.completes_at) == 0


def test_remaining_zero_after_completion():
    sim, _, engine = make_engine()
    transfer = engine.start(0, 256, 64)
    sim.run()
    assert transfer.remaining(sim.now) == 0


def test_completion_callback_invoked():
    sim, _, engine = make_engine()
    done = []
    engine.start(0, 256, 8, on_complete=done.append)
    sim.run()
    assert len(done) == 1
    assert isinstance(done[0], Transfer)


def test_counters():
    sim, _, engine = make_engine()
    engine.start(0, 256, 8)
    engine.start(8, 512, 16)
    sim.run()
    assert engine.transfers_started == 2
    assert engine.bytes_moved == 24
    assert len(engine.history) == 2


def test_bad_size_rejected():
    _, _, engine = make_engine()
    with pytest.raises(ConfigError):
        engine.start(0, 256, 0)


def test_bad_bandwidth_rejected():
    sim = Simulator()
    ram = PhysicalMemory(kib(8))
    with pytest.raises(ConfigError):
        DmaTransferEngine(sim, 0, 0, ram.copy)


def test_negative_startup_rejected():
    sim = Simulator()
    ram = PhysicalMemory(kib(8))
    with pytest.raises(ConfigError):
        DmaTransferEngine(sim, mbps(1), -1, ram.copy)


def test_concurrent_transfers_complete_independently():
    sim, ram, engine = make_engine(startup=0)
    ram.write(0, b"AA")
    ram.write(16, b"BB")
    first = engine.start(0, 256, 2)
    second = engine.start(16, 512, 2)
    sim.run()
    assert first.completed and second.completed
    assert ram.read(256, 2) == b"AA"
    assert ram.read(512, 2) == b"BB"
