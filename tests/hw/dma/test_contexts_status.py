"""Unit tests for register contexts and status words."""

from repro.hw.dma.contexts import RegisterContext
from repro.hw.dma.status import (
    STATUS_ACK,
    STATUS_FAILURE,
    STATUS_PENDING,
    is_failure,
    is_rejection,
    to_signed,
)
from repro.hw.dma.transfer import Transfer


def test_fresh_context_incomplete():
    ctx = RegisterContext(0)
    assert not ctx.args_complete


def test_args_complete_requires_all_three():
    ctx = RegisterContext(0)
    ctx.src = 0x100
    ctx.dst = 0x200
    assert not ctx.args_complete
    ctx.size = 64
    assert ctx.args_complete


def test_clear_args():
    ctx = RegisterContext(0, src=1, dst=2, size=3)
    ctx.clear_args()
    assert (ctx.src, ctx.dst, ctx.size) == (None, None, None)


def test_reset_clears_status_too():
    ctx = RegisterContext(0, failed=True)
    ctx.transfer = Transfer(0, 0, 8, started_at=0, duration=10)
    ctx.reset()
    assert not ctx.failed
    assert ctx.transfer is None


def test_status_word_failure_sticky():
    ctx = RegisterContext(0, failed=True)
    assert ctx.status_word(0) == STATUS_FAILURE


def test_status_word_idle_is_ack():
    assert RegisterContext(0).status_word(0) == STATUS_ACK


def test_status_word_tracks_remaining():
    ctx = RegisterContext(0)
    ctx.transfer = Transfer(0, 0, 1000, started_at=0, duration=1000)
    assert ctx.status_word(0) == 1000
    assert ctx.status_word(2000) == 0


def test_status_predicates():
    assert is_failure(STATUS_FAILURE)
    assert not is_failure(STATUS_PENDING)
    assert is_rejection(STATUS_FAILURE)
    assert is_rejection(STATUS_PENDING)
    assert not is_rejection(0)
    assert not is_rejection(64)


def test_failure_reads_as_minus_one():
    assert to_signed(STATUS_FAILURE) == -1
    assert to_signed(STATUS_PENDING) == -2
    assert to_signed(64) == 64


def test_pending_and_failure_distinct():
    assert STATUS_PENDING != STATUS_FAILURE
