"""Ablation: does the size word need to repeat with the destination?

The paper's §3.3 constraint is stated over *addresses* only; this
implementation additionally requires the size word to repeat.  These
tests justify that strengthening: a paper-literal engine
(``require_size_repeat=False``) can fire a transfer with a **stale
size** when a process abandons an attempt and restarts with a different
length — overrunning (or truncating) its own intended transfer.  The
strict engine treats the changed-size store as a fresh attempt and fires
with the size the process actually asked for.
"""

from repro.hw.dma.protocols.repeated import RepeatedPassingProtocol
from repro.verify.interleave import AccessSpec, ProtocolHarness

SRC = 0x0000
DST = 0x2000


def restart_stream(old_size=4096, new_size=64):
    """S(d, old) L(s)  — abandon —  S(d, new) L(s) L(d).

    The process changed its mind about the size mid-attempt: a
    perfectly legal retry its own retry loop can produce.
    """
    return [
        AccessSpec(1, "store", DST, old_size),
        AccessSpec(1, "load", SRC),
        AccessSpec(1, "store", DST, new_size),
        AccessSpec(1, "load", SRC),
        AccessSpec(1, "load", DST, final=True),
    ]


def run(require_size_repeat):
    harness = ProtocolHarness(
        lambda: RepeatedPassingProtocol(
            5, require_size_repeat=require_size_repeat))
    for access in restart_stream():
        harness.deliver(access)
    return harness


def test_strict_engine_never_fires_with_a_stale_size():
    harness = run(require_size_repeat=True)
    # The changed-size store reset and reopened the attempt, so this
    # truncated stream does not complete a pattern at all...
    assert harness.engine.started_transfers() == []
    # ...and a full retry with the new size succeeds with that size.
    for access in restart_stream(new_size=64)[2:] + [
            AccessSpec(1, "store", DST, 64),
            AccessSpec(1, "load", SRC),
            AccessSpec(1, "store", DST, 64),
            AccessSpec(1, "load", SRC),
            AccessSpec(1, "load", DST)]:
        harness.deliver(access)
    started = harness.engine.started_transfers()
    assert started
    assert all(r.size == 64 for r in started)


def test_literal_engine_fires_with_the_stale_size():
    harness = run(require_size_repeat=False)
    started = harness.engine.started_transfers()
    assert len(started) == 1
    # The transfer ran with the ABANDONED 4096-byte size — a 64x
    # overrun of what the process currently wants.
    assert started[0].size == 4096


def test_both_engines_agree_on_clean_sequences():
    from repro.verify.interleave import initiation_stream

    for strict in (True, False):
        harness = ProtocolHarness(
            lambda s=strict: RepeatedPassingProtocol(
                5, require_size_repeat=s))
        for access in initiation_stream("repeated5", 1, SRC, DST, 256):
            harness.deliver(access)
        records = harness.engine.started_transfers()
        assert len(records) == 1
        assert records[0].size == 256


def test_adversarial_safety_unaffected_by_the_flag():
    """The strengthening is about self-consistency, not the attacks:
    the Fig. 8 scenario stays safe either way (the attacker still
    cannot name the destination)."""
    from repro.verify.adversary import fig8_scenario
    from repro.verify.model_check import check_scenario

    # The standard checker uses the strict engine; for the literal one,
    # replay the scenario manually.
    scenario = fig8_scenario(1)
    from repro.verify.interleave import enumerate_interleavings
    from repro.verify.properties import check_authorized_start

    harness = ProtocolHarness(
        lambda: RepeatedPassingProtocol(5, require_size_repeat=False))
    bad = 0
    for order in enumerate_interleavings(scenario.streams):
        evidence = harness.replay(order)
        if check_authorized_start(evidence, scenario.rights):
            bad += 1
    assert bad == 0
    assert check_scenario(scenario).safe
