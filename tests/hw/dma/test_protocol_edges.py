"""Edge-case matrix for the protocol FSMs beyond the happy paths."""

import pytest

from repro.hw.dma.protocols import (
    ExtendedShadowProtocol,
    FlashProtocol,
    KeyedProtocol,
    MappedOutProtocol,
    PendingPairProtocol,
    RepeatedPassingProtocol,
)
from repro.hw.dma.protocols.keyed import (
    ARG_DESTINATION,
    ARG_SOURCE,
    pack_key_word,
)
from repro.hw.dma.status import STATUS_FAILURE, STATUS_PENDING
from repro.hw.pagetable import PAGE_SIZE
from repro.verify.interleave import AccessSpec, ProtocolHarness

SRC = 0
DST = 2 * PAGE_SIZE
KEY = 0xFEED


class TestShrimp1Edges:
    def test_multi_page_mapout_routes_each_page(self):
        h = ProtocolHarness(MappedOutProtocol)
        h.engine.install_mapout(0, 4 * PAGE_SIZE)
        h.engine.install_mapout(PAGE_SIZE, 6 * PAGE_SIZE)
        first = h.deliver(AccessSpec(1, "exchange", 16, 64))
        second = h.deliver(AccessSpec(1, "exchange", PAGE_SIZE + 32, 64))
        assert first == second == 64
        records = h.engine.started_transfers()
        assert records[0].pdst == 4 * PAGE_SIZE + 16
        assert records[1].pdst == 6 * PAGE_SIZE + 32

    def test_zero_size_exchange_rejected(self):
        h = ProtocolHarness(MappedOutProtocol)
        h.engine.install_mapout(0, 4 * PAGE_SIZE)
        assert h.deliver(AccessSpec(1, "exchange", 0, 0)) == (
            STATUS_FAILURE)

    def test_remap_overwrites_destination(self):
        h = ProtocolHarness(MappedOutProtocol)
        h.engine.install_mapout(0, 4 * PAGE_SIZE)
        h.engine.install_mapout(0, 6 * PAGE_SIZE)
        h.deliver(AccessSpec(1, "exchange", 8, 32))
        assert h.engine.started_transfers()[0].pdst == 6 * PAGE_SIZE + 8


class TestShrimp2Edges:
    def test_back_to_back_pairs_from_one_process(self):
        h = ProtocolHarness(PendingPairProtocol)
        for index in range(3):
            h.deliver(AccessSpec(1, "store", DST + index * 64, 32))
            status = h.deliver(AccessSpec(1, "load", SRC + index * 64))
            assert status == 32
        assert len(h.engine.started_transfers()) == 3

    def test_abort_without_pending_is_harmless(self):
        h = ProtocolHarness(PendingPairProtocol)
        h.protocol.on_abort_pending()
        assert h.protocol.aborts == 0
        h.deliver(AccessSpec(1, "store", DST, 32))
        assert h.deliver(AccessSpec(1, "load", SRC)) == 32

    def test_zero_size_store_fails_at_start(self):
        h = ProtocolHarness(PendingPairProtocol)
        h.deliver(AccessSpec(1, "store", DST, 0))
        assert h.deliver(AccessSpec(1, "load", SRC)) == STATUS_FAILURE


class TestFlashEdges:
    def test_rapid_switches_between_stores(self):
        h = ProtocolHarness(FlashProtocol)
        h.engine.current_pid = 1
        h.deliver(AccessSpec(1, "store", DST, 32))
        h.protocol.on_context_switch(2)
        h.engine.current_pid = 2
        h.protocol.on_context_switch(1)
        h.engine.current_pid = 1
        # Back on pid 1: the tag (1) matches again — FLASH accepts.  The
        # tag protects against *other* processes consuming the latch,
        # not against the same process resuming.
        assert h.deliver(AccessSpec(1, "load", SRC)) == 32

    def test_store_after_switch_uses_new_tag(self):
        h = ProtocolHarness(FlashProtocol)
        h.engine.current_pid = 1
        h.deliver(AccessSpec(1, "store", DST, 32))
        h.engine.current_pid = 2
        h.deliver(AccessSpec(2, "store", DST + 64, 48))
        assert h.deliver(AccessSpec(2, "load", SRC)) == 48


class TestKeyedEdges:
    def make(self):
        h = ProtocolHarness(KeyedProtocol)
        h.install_key(0, KEY)
        return h

    def test_overwriting_an_argument_is_allowed(self):
        """A process may restart its own sequence; the last store of
        each argument wins (self-describing arg selectors)."""
        h = self.make()
        h.deliver(AccessSpec(1, "store", DST,
                             pack_key_word(KEY, 0, ARG_DESTINATION)))
        h.deliver(AccessSpec(1, "store", DST + 64,
                             pack_key_word(KEY, 0, ARG_DESTINATION)))
        h.deliver(AccessSpec(1, "store", SRC,
                             pack_key_word(KEY, 0, ARG_SOURCE)))
        h.deliver(AccessSpec(1, "ctx-store", data=32, ctx_id=0))
        assert h.deliver(AccessSpec(1, "ctx-load", ctx_id=0)) == 32
        assert h.engine.started_transfers()[0].pdst == DST + 64

    def test_key_for_out_of_range_context_dropped(self):
        h = self.make()
        word = pack_key_word(KEY, 7, ARG_SOURCE)  # ctx 7 of 4
        h.deliver(AccessSpec(1, "store", SRC, word))
        assert h.protocol.key_rejections == 1

    def test_second_initiation_reuses_context(self):
        h = self.make()
        for index in range(2):
            h.deliver(AccessSpec(
                1, "store", DST + index * 64,
                pack_key_word(KEY, 0, ARG_DESTINATION)))
            h.deliver(AccessSpec(
                1, "store", SRC + index * 64,
                pack_key_word(KEY, 0, ARG_SOURCE)))
            h.deliver(AccessSpec(1, "ctx-store", data=32, ctx_id=0))
            assert h.deliver(AccessSpec(1, "ctx-load", ctx_id=0)) == 32
        assert len(h.engine.started_transfers()) == 2

    def test_size_zero_rejected_at_start(self):
        h = self.make()
        h.deliver(AccessSpec(1, "store", DST,
                             pack_key_word(KEY, 0, ARG_DESTINATION)))
        h.deliver(AccessSpec(1, "store", SRC,
                             pack_key_word(KEY, 0, ARG_SOURCE)))
        h.deliver(AccessSpec(1, "ctx-store", data=0, ctx_id=0))
        assert h.deliver(AccessSpec(1, "ctx-load", ctx_id=0)) == (
            STATUS_FAILURE)


class TestExtshadowEdges:
    def test_restarting_overwrites_own_latch(self):
        h = ProtocolHarness(ExtendedShadowProtocol)
        h.deliver(AccessSpec(1, "store", DST, 32, ctx_id=1))
        h.deliver(AccessSpec(1, "store", DST + 64, 48, ctx_id=1))
        assert h.deliver(AccessSpec(1, "load", SRC, ctx_id=1)) == 48
        assert h.engine.started_transfers()[0].pdst == DST + 64

    def test_all_contexts_concurrently(self):
        h = ProtocolHarness(ExtendedShadowProtocol)
        for ctx in range(4):
            h.deliver(AccessSpec(ctx + 1, "store", DST + ctx * 64,
                                 32, ctx_id=ctx))
        for ctx in range(4):
            assert h.deliver(AccessSpec(ctx + 1, "load", SRC + ctx * 64,
                                        ctx_id=ctx)) == 32
        assert len(h.engine.started_transfers()) == 4


class TestRepeatedEdges:
    def test_interleaved_attempts_same_process(self):
        """A process abandoning an attempt and restarting converges."""
        h = ProtocolHarness(lambda: RepeatedPassingProtocol(5))
        h.deliver(AccessSpec(1, "store", DST, 32))
        h.deliver(AccessSpec(1, "load", SRC))
        # Abandon; start over with a different destination.
        h.deliver(AccessSpec(1, "store", DST + 64, 48))
        h.deliver(AccessSpec(1, "load", SRC))
        h.deliver(AccessSpec(1, "store", DST + 64, 48))
        h.deliver(AccessSpec(1, "load", SRC))
        status = h.deliver(AccessSpec(1, "load", DST + 64))
        assert status == 48
        record = h.engine.started_transfers()[0]
        assert record.pdst == DST + 64

    def test_exchange_is_failure_for_repeated(self):
        h = ProtocolHarness(lambda: RepeatedPassingProtocol(5))
        assert h.deliver(AccessSpec(1, "exchange", SRC, 32)) == (
            STATUS_FAILURE)

    def test_resets_counted(self):
        h = ProtocolHarness(lambda: RepeatedPassingProtocol(5))
        h.deliver(AccessSpec(1, "store", DST, 32))
        h.deliver(AccessSpec(1, "store", DST + 8, 32))  # reset + reopen
        assert h.protocol.resets == 1

    def test_pending_distinct_from_remaining(self):
        h = ProtocolHarness(lambda: RepeatedPassingProtocol(5))
        h.deliver(AccessSpec(1, "store", DST, 64))
        status = h.deliver(AccessSpec(1, "load", SRC))
        assert status == STATUS_PENDING
        assert status != 64

    @pytest.mark.parametrize("length", [3, 4, 5])
    def test_snapshot_resets_after_fire(self, length):
        h = ProtocolHarness(lambda: RepeatedPassingProtocol(length))
        from repro.verify.interleave import initiation_stream

        for access in initiation_stream(f"repeated{length}", 1, SRC,
                                        DST, 64):
            h.deliver(access)
        assert h.protocol.state_snapshot() == [0, None, None, None]
