"""Unit tests for the shadow-address codec."""

import pytest

from repro.errors import AddressError, ConfigError
from repro.hw.dma.shadow import ShadowLayout
from repro.hw.pagetable import PAGE_SIZE


def test_roundtrip_plain():
    layout = ShadowLayout()
    shadow = layout.shadow_paddr(0x1234)
    ref = layout.decode_paddr(shadow)
    assert ref is not None
    assert ref.paddr == 0x1234
    assert ref.ctx_id == 0


def test_roundtrip_with_context():
    layout = ShadowLayout(n_contexts=4, ctx_bits=2)
    for ctx in range(4):
        shadow = layout.shadow_paddr(0xABC0, ctx)
        ref = layout.decode_paddr(shadow)
        assert (ref.ctx_id, ref.paddr) == (ctx, 0xABC0)


def test_distinct_contexts_distinct_addresses():
    layout = ShadowLayout()
    addresses = {layout.shadow_paddr(0x100, ctx) for ctx in range(4)}
    assert len(addresses) == 4


def test_decode_register_region_returns_none():
    layout = ShadowLayout()
    assert layout.decode_offset(0) is None
    assert layout.decode_offset(layout.control_page_offset) is None


def test_decode_outside_window_returns_none():
    layout = ShadowLayout()
    assert layout.decode_offset(layout.window_size + 10) is None
    assert layout.decode_paddr(layout.window_base - 1) is None


def test_is_shadow():
    layout = ShadowLayout()
    assert layout.is_shadow(layout.shadow_paddr(0))
    assert not layout.is_shadow(layout.window_base)


def test_argument_overflow_rejected():
    layout = ShadowLayout()
    with pytest.raises(AddressError):
        layout.shadow_paddr(layout.max_argument_paddr)


def test_bad_context_rejected():
    layout = ShadowLayout(n_contexts=2, ctx_bits=1)
    with pytest.raises(AddressError):
        layout.shadow_paddr(0, 2)
    with pytest.raises(AddressError):
        layout.context_page_paddr(2)


def test_context_pages_are_page_separated():
    layout = ShadowLayout()
    assert (layout.context_page_paddr(1) - layout.context_page_paddr(0)
            == PAGE_SIZE)


def test_context_of_offset():
    layout = ShadowLayout(n_contexts=4)
    assert layout.context_of_offset(0) == 0
    assert layout.context_of_offset(3 * PAGE_SIZE + 8) == 3
    assert layout.context_of_offset(4 * PAGE_SIZE) is None  # key page


def test_privileged_pages_follow_contexts():
    layout = ShadowLayout(n_contexts=4)
    assert layout.key_page_offset == 4 * PAGE_SIZE
    assert layout.control_page_offset == 5 * PAGE_SIZE


def test_window_size_covers_shadow_region():
    layout = ShadowLayout()
    top = layout.shadow_paddr(layout.max_argument_paddr - 8,
                              layout.n_contexts - 1)
    assert top < layout.window_base + layout.window_size


def test_too_few_ctx_bits_rejected():
    with pytest.raises(ConfigError):
        ShadowLayout(n_contexts=8, ctx_bits=2)


def test_unaligned_window_base_rejected():
    with pytest.raises(ConfigError):
        ShadowLayout(window_base=(1 << 40) + 1)


def test_shadow_region_must_clear_register_pages():
    with pytest.raises(ConfigError):
        ShadowLayout(n_contexts=4, shadow_offset=2 * PAGE_SIZE)
