"""Unit tests for the atomic-operations unit (§3.5)."""

import pytest

from repro.errors import ConfigError
from repro.hw.atomic_unit import (
    AtomicShadowLayout,
    AtomicUnit,
    CTX_OPERAND,
    CTX_OPERAND2,
    OP_ADD,
    OP_CAS,
    OP_CAS_SWAP,
    OP_FETCH_STORE,
    REG_OPCODE,
    REG_OPERAND,
    REG_OPERAND2,
    REG_RESULT,
    REG_TARGET,
)
from repro.hw.device import AccessContext
from repro.hw.dma.protocols.keyed import pack_key_word
from repro.hw.dma.status import STATUS_FAILURE
from repro.hw.memory import PhysicalMemory
from repro.hw.pagetable import PAGE_SIZE
from repro.sim.engine import Simulator
from repro.units import kib

USER = AccessContext(issuer=1, kernel=False, when=0)
KERNEL = AccessContext(issuer=None, kernel=True, when=0)
TARGET = 0x100
KEY = 0x77A


def make_unit(mode="keyed"):
    sim = Simulator()
    ram = PhysicalMemory(kib(64))
    unit = AtomicUnit(sim, ram, mode=mode)
    ram.write_word(TARGET, 10)
    return sim, ram, unit


def shadow_off(unit, op, paddr, ctx=0):
    return (unit.layout.shadow_paddr(op, paddr, ctx)
            - unit.layout.window_base)


def ctx_off(unit, ctx, reg=0):
    return ctx * PAGE_SIZE + reg


class TestLayout:
    def test_roundtrip(self):
        layout = AtomicShadowLayout()
        for op in (OP_ADD, OP_CAS, OP_CAS_SWAP):
            addr = layout.shadow_paddr(op, 0x1230, 2)
            assert layout.decode_offset(addr - layout.window_base) == (
                op, 2, 0x1230)

    def test_overflow_rejected(self):
        layout = AtomicShadowLayout()
        with pytest.raises(ConfigError):
            layout.shadow_paddr(4, 0)
        with pytest.raises(ConfigError):
            layout.shadow_paddr(0, 1 << layout.addr_bits)
        with pytest.raises(ConfigError):
            layout.shadow_paddr(0, 0, 4)

    def test_target_field_carries_global_addresses(self):
        """34 bits: 6 node bits + 28 local bits (the NIC address map)."""
        layout = AtomicShadowLayout()
        assert layout.addr_bits == 34
        top_global = (63 << 28) | ((1 << 28) - 8)
        roundtrip = layout.decode_offset(
            layout.shadow_paddr(0, top_global) - layout.window_base)
        assert roundtrip == (0, 0, top_global)

    def test_register_region_not_shadow(self):
        layout = AtomicShadowLayout()
        assert layout.decode_offset(0) is None


class TestKernelPath:
    def run_op(self, unit, op, operand, operand2=0):
        base = unit.layout.control_page * PAGE_SIZE
        unit.mmio_write(base + REG_TARGET, TARGET, KERNEL)
        unit.mmio_write(base + REG_OPERAND, operand, KERNEL)
        unit.mmio_write(base + REG_OPERAND2, operand2, KERNEL)
        unit.mmio_write(base + REG_OPCODE, op, KERNEL)
        return unit.mmio_read(base + REG_RESULT, KERNEL)

    def test_atomic_add(self):
        _, ram, unit = make_unit()
        assert self.run_op(unit, OP_ADD, 5) == 10
        assert ram.read_word(TARGET) == 15

    def test_fetch_and_store(self):
        _, ram, unit = make_unit()
        assert self.run_op(unit, OP_FETCH_STORE, 99) == 10
        assert ram.read_word(TARGET) == 99

    def test_cas_success_and_failure(self):
        _, ram, unit = make_unit()
        assert self.run_op(unit, OP_CAS, 10, 42) == 10
        assert ram.read_word(TARGET) == 42
        assert self.run_op(unit, OP_CAS, 10, 7) == 42  # compare fails
        assert ram.read_word(TARGET) == 42

    def test_user_cannot_touch_control_page(self):
        _, ram, unit = make_unit()
        base = unit.layout.control_page * PAGE_SIZE
        unit.mmio_write(base + REG_TARGET, TARGET, USER)
        assert unit.mmio_read(base + REG_RESULT, USER) == STATUS_FAILURE
        assert unit.protocol_violations == 2

    def test_bad_target_fails(self):
        _, _, unit = make_unit()
        base = unit.layout.control_page * PAGE_SIZE
        unit.mmio_write(base + REG_TARGET, kib(64), KERNEL)  # out of RAM
        unit.mmio_write(base + REG_OPERAND, 1, KERNEL)
        unit.mmio_write(base + REG_OPCODE, OP_ADD, KERNEL)
        assert unit.mmio_read(base + REG_RESULT, KERNEL) == STATUS_FAILURE

    def test_unaligned_target_fails(self):
        _, _, unit = make_unit()
        base = unit.layout.control_page * PAGE_SIZE
        unit.mmio_write(base + REG_TARGET, TARGET + 3, KERNEL)
        unit.mmio_write(base + REG_OPERAND, 1, KERNEL)
        unit.mmio_write(base + REG_OPCODE, OP_ADD, KERNEL)
        assert unit.mmio_read(base + REG_RESULT, KERNEL) == STATUS_FAILURE


class TestKeyedFlow:
    def test_add_with_correct_key(self):
        _, ram, unit = make_unit("keyed")
        unit.install_key(0, KEY)
        unit.mmio_write(shadow_off(unit, OP_ADD, TARGET),
                        pack_key_word(KEY, 0, 0), USER)
        unit.mmio_write(ctx_off(unit, 0, CTX_OPERAND), 7, USER)
        assert unit.mmio_read(ctx_off(unit, 0), USER) == 10
        assert ram.read_word(TARGET) == 17

    def test_wrong_key_rejected(self):
        _, ram, unit = make_unit("keyed")
        unit.install_key(0, KEY)
        unit.mmio_write(shadow_off(unit, OP_ADD, TARGET),
                        pack_key_word(KEY ^ 1, 0, 0), USER)
        unit.mmio_write(ctx_off(unit, 0, CTX_OPERAND), 7, USER)
        assert unit.mmio_read(ctx_off(unit, 0), USER) == STATUS_FAILURE
        assert ram.read_word(TARGET) == 10
        assert unit.key_rejections == 1

    def test_cas_needs_second_operand(self):
        _, ram, unit = make_unit("keyed")
        unit.install_key(0, KEY)
        unit.mmio_write(shadow_off(unit, OP_CAS, TARGET),
                        pack_key_word(KEY, 0, 0), USER)
        unit.mmio_write(ctx_off(unit, 0, CTX_OPERAND), 10, USER)
        assert unit.mmio_read(ctx_off(unit, 0), USER) == STATUS_FAILURE
        # Retry with both operands latched.
        unit.mmio_write(shadow_off(unit, OP_CAS, TARGET),
                        pack_key_word(KEY, 0, 0), USER)
        unit.mmio_write(ctx_off(unit, 0, CTX_OPERAND), 10, USER)
        unit.mmio_write(ctx_off(unit, 0, CTX_OPERAND2), 55, USER)
        assert unit.mmio_read(ctx_off(unit, 0), USER) == 10
        assert ram.read_word(TARGET) == 55

    def test_contexts_are_isolated(self):
        _, ram, unit = make_unit("keyed")
        unit.install_key(0, KEY)
        unit.install_key(1, 0xB0B)
        unit.mmio_write(shadow_off(unit, OP_ADD, TARGET),
                        pack_key_word(KEY, 0, 0), USER)
        unit.mmio_write(ctx_off(unit, 0, CTX_OPERAND), 1, USER)
        # A second process latches its own op in context 1.
        other = AccessContext(issuer=2, kernel=False, when=0)
        unit.mmio_write(shadow_off(unit, OP_FETCH_STORE, TARGET + 8),
                        pack_key_word(0xB0B, 1, 0), other)
        unit.mmio_write(ctx_off(unit, 1, CTX_OPERAND), 2, other)
        # Both execute independently.
        assert unit.mmio_read(ctx_off(unit, 0), USER) == 10
        assert unit.mmio_read(ctx_off(unit, 1), other) == 0
        assert ram.read_word(TARGET) == 11
        assert ram.read_word(TARGET + 8) == 2

    def test_shadow_load_not_part_of_keyed_flow(self):
        _, _, unit = make_unit("keyed")
        assert unit.mmio_read(shadow_off(unit, OP_ADD, TARGET),
                              USER) == STATUS_FAILURE


class TestExtShadowFlow:
    def test_two_instruction_add(self):
        _, ram, unit = make_unit("extshadow")
        off = shadow_off(unit, OP_ADD, TARGET, ctx=1)
        unit.mmio_write(off, 7, USER)
        assert unit.mmio_read(off, USER) == 10
        assert ram.read_word(TARGET) == 17

    def test_fetch_and_store(self):
        _, ram, unit = make_unit("extshadow")
        off = shadow_off(unit, OP_FETCH_STORE, TARGET)
        unit.mmio_write(off, 123, USER)
        assert unit.mmio_read(off, USER) == 10
        assert ram.read_word(TARGET) == 123

    def test_three_instruction_cas(self):
        _, ram, unit = make_unit("extshadow")
        cas = shadow_off(unit, OP_CAS, TARGET, ctx=0)
        swap = shadow_off(unit, OP_CAS_SWAP, TARGET, ctx=0)
        unit.mmio_write(cas, 10, USER)     # compare operand
        unit.mmio_write(swap, 77, USER)    # swap operand
        assert unit.mmio_read(cas, USER) == 10
        assert ram.read_word(TARGET) == 77

    def test_mismatched_load_clears_latch(self):
        _, ram, unit = make_unit("extshadow")
        unit.mmio_write(shadow_off(unit, OP_ADD, TARGET), 7, USER)
        wrong = shadow_off(unit, OP_ADD, TARGET + 8)
        assert unit.mmio_read(wrong, USER) == STATUS_FAILURE
        # Latch is gone; the original load now fails too.
        assert unit.mmio_read(shadow_off(unit, OP_ADD, TARGET),
                              USER) == STATUS_FAILURE
        assert ram.read_word(TARGET) == 10

    def test_cas_swap_without_cas_clears(self):
        _, _, unit = make_unit("extshadow")
        unit.mmio_write(shadow_off(unit, OP_CAS_SWAP, TARGET), 5, USER)
        assert unit.mmio_read(shadow_off(unit, OP_CAS, TARGET),
                              USER) == STATUS_FAILURE


def test_operations_recorded():
    _, _, unit = make_unit("extshadow")
    off = shadow_off(unit, OP_ADD, TARGET)
    unit.mmio_write(off, 7, USER)
    unit.mmio_read(off, USER)
    assert len(unit.operations) == 1
    record = unit.operations[0]
    assert record.op == OP_ADD
    assert record.result == 10
    assert record.via == "extshadow"


def test_reset_scrubs():
    _, _, unit = make_unit("keyed")
    unit.install_key(0, KEY)
    unit.reset()
    assert unit.key_table == {}
    assert unit.operations == []


def test_unknown_mode_rejected():
    sim = Simulator()
    ram = PhysicalMemory(kib(8))
    with pytest.raises(ConfigError):
        AtomicUnit(sim, ram, mode="bogus")
