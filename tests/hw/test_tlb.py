"""Unit tests for the TLB."""

import pytest

from repro.errors import ConfigError
from repro.hw.pagetable import PAGE_SIZE, Perm, Pte
from repro.hw.tlb import Tlb


def pte(frame: int) -> Pte:
    return Pte(frame * PAGE_SIZE, Perm.RW)


def test_miss_then_hit():
    tlb = Tlb()
    assert tlb.lookup(0x1000) is None
    tlb.insert(0x1000, pte(1))
    assert tlb.lookup(0x1000) is not None
    assert tlb.hits == 1
    assert tlb.misses == 1


def test_same_page_different_offset_hits():
    tlb = Tlb()
    tlb.insert(0, pte(1))
    assert tlb.lookup(PAGE_SIZE - 1) is not None


def test_lru_eviction():
    tlb = Tlb(capacity=2)
    tlb.insert(0 * PAGE_SIZE, pte(1))
    tlb.insert(1 * PAGE_SIZE, pte(2))
    tlb.lookup(0)                      # page 0 becomes most recent
    tlb.insert(2 * PAGE_SIZE, pte(3))  # evicts page 1
    assert tlb.lookup(0) is not None
    assert tlb.lookup(1 * PAGE_SIZE) is None
    assert tlb.lookup(2 * PAGE_SIZE) is not None


def test_reinsert_updates_entry():
    tlb = Tlb()
    tlb.insert(0, pte(1))
    tlb.insert(0, pte(2))
    assert tlb.lookup(0).pframe == 2 * PAGE_SIZE
    assert tlb.occupancy == 1


def test_flush_clears_and_counts():
    tlb = Tlb()
    tlb.insert(0, pte(1))
    tlb.flush()
    assert tlb.occupancy == 0
    assert tlb.flushes == 1
    assert tlb.lookup(0) is None


def test_invalidate_single_entry():
    tlb = Tlb()
    tlb.insert(0, pte(1))
    tlb.insert(PAGE_SIZE, pte(2))
    assert tlb.invalidate(0)
    assert not tlb.invalidate(0)
    assert tlb.lookup(PAGE_SIZE) is not None


def test_capacity_bound():
    tlb = Tlb(capacity=4)
    for index in range(10):
        tlb.insert(index * PAGE_SIZE, pte(index))
    assert tlb.occupancy == 4


def test_hit_rate():
    tlb = Tlb()
    tlb.insert(0, pte(1))
    tlb.lookup(0)
    tlb.lookup(PAGE_SIZE)
    assert tlb.hit_rate == 0.5


def test_hit_rate_empty_is_zero():
    assert Tlb().hit_rate == 0.0


def test_zero_capacity_rejected():
    with pytest.raises(ConfigError):
        Tlb(capacity=0)
