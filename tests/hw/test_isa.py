"""Unit tests for the ISA and assembler."""

import pytest

from repro.errors import ConfigError
from repro.hw.isa import (
    Add,
    Addr,
    Beq,
    CompareExchange,
    Halt,
    Jump,
    Label,
    Load,
    Mov,
    Program,
    Store,
    assemble,
    count_memory_accesses,
)


def test_assemble_strips_labels():
    program = assemble([Label("top"), Mov("t0", 1), Halt()])
    assert len(program) == 2
    assert program.target("top") == 0


def test_label_points_at_next_instruction():
    program = assemble([Mov("t0", 1), Label("mid"), Halt()])
    assert program.target("mid") == 1


def test_duplicate_label_rejected():
    with pytest.raises(ConfigError):
        assemble([Label("x"), Label("x")])


def test_dangling_branch_rejected():
    with pytest.raises(ConfigError):
        assemble([Beq("t0", 0, "nowhere")])


def test_unknown_register_rejected():
    with pytest.raises(ConfigError):
        assemble([Mov("r99", 1)])


def test_unknown_base_register_rejected():
    with pytest.raises(ConfigError):
        Addr("bogus", 0)


def test_absolute_addr_repr():
    assert "0x1000" in repr(Addr(None, 0x1000))


def test_based_addr_repr():
    text = repr(Addr("a0", 8))
    assert "a0" in text


def test_unknown_target_lookup_raises():
    program = assemble([Halt()], name="p")
    with pytest.raises(ConfigError):
        program.target("missing")


def test_count_memory_accesses():
    program = assemble([
        Load("t0", Addr(None, 0)),
        Store(Addr(None, 8), 1),
        CompareExchange("t1", Addr(None, 16), 2),
        Mov("t2", 3),
        Add("t3", "t2", 1),
        Halt(),
    ])
    assert count_memory_accesses(program) == 3


def test_jump_target_validated():
    program = assemble([Jump("end"), Mov("t0", 1), Label("end"), Halt()])
    assert program.target("end") == 2


def test_program_len():
    assert len(Program([Halt()], {})) == 1
