"""Unit tests for the I/O bus: routing, windows, timing."""

import pytest

from repro.errors import BusError, ConfigError
from repro.hw.bus import (
    BUS_PRESETS,
    Bus,
    PCI_33,
    PCI_66,
    TURBOCHANNEL_12_5,
)
from repro.hw.device import AccessContext, MmioDevice
from repro.hw.memory import PhysicalMemory
from repro.units import kib


class Echo(MmioDevice):
    def __init__(self, name="echo"):
        super().__init__(name)
        self.writes = {}

    def mmio_read(self, offset, ctx):
        return self.writes.get(offset, 0xEE)

    def mmio_write(self, offset, value, ctx):
        self.writes[offset] = value


CTX = AccessContext(issuer=1, kernel=False, when=0)
WINDOW = 1 << 40


def make_bus(timing=TURBOCHANNEL_12_5):
    ram = PhysicalMemory(kib(64))
    bus = Bus(ram, timing)
    device = Echo()
    bus.attach(device, WINDOW, kib(32))
    return bus, device


def test_ram_routing():
    bus, _ = make_bus()
    cost = bus.write_word(64, 0x1234, CTX)
    value, _ = bus.read_word(64, CTX)
    assert value == 0x1234
    assert cost == bus.clock.cycles(TURBOCHANNEL_12_5.ram_word_cycles)


def test_device_routing_uses_offsets():
    bus, device = make_bus()
    bus.write_word(WINDOW + 0x100, 7, CTX)
    assert device.writes == {0x100: 7}
    value, _ = bus.read_word(WINDOW + 0x100, CTX)
    assert value == 7


def test_unmapped_address_is_bus_error():
    bus, _ = make_bus()
    with pytest.raises(BusError):
        bus.read_word(1 << 50, CTX)
    with pytest.raises(BusError):
        bus.write_word(1 << 50, 0, CTX)


def test_device_access_costs_match_preset():
    bus, _ = make_bus()
    write_cost = bus.write_word(WINDOW, 1, CTX)
    _, read_cost = bus.read_word(WINDOW, CTX)
    assert write_cost == bus.clock.cycles(
        TURBOCHANNEL_12_5.device_write_cycles)
    assert read_cost == bus.clock.cycles(
        TURBOCHANNEL_12_5.device_read_cycles)


def test_turbochannel_write_is_560ns():
    bus, _ = make_bus()
    assert bus.write_word(WINDOW, 1, CTX) == 560_000  # 7 x 80 ns in ps


def test_pci_is_faster_than_turbochannel():
    tc_bus, _ = make_bus(TURBOCHANNEL_12_5)
    pci_bus, _ = make_bus(PCI_33)
    assert (pci_bus.write_word(WINDOW, 1, CTX)
            < tc_bus.write_word(WINDOW, 1, CTX))


def test_pci66_twice_as_fast_as_pci33():
    b33, _ = make_bus(PCI_33)
    b66, _ = make_bus(PCI_66)
    assert b66.write_word(WINDOW, 1, CTX) * 2 == pytest.approx(
        b33.write_word(WINDOW, 1, CTX), rel=0.01)


def test_window_overlap_with_ram_rejected():
    ram = PhysicalMemory(kib(64))
    bus = Bus(ram, TURBOCHANNEL_12_5)
    with pytest.raises(ConfigError):
        bus.attach(Echo(), kib(32), kib(8))


def test_window_overlap_with_window_rejected():
    bus, _ = make_bus()
    with pytest.raises(ConfigError):
        bus.attach(Echo("other"), WINDOW + kib(16), kib(32))


def test_adjacent_windows_allowed():
    bus, _ = make_bus()
    bus.attach(Echo("other"), WINDOW + kib(32), kib(8))
    assert len(bus.devices) == 2


def test_empty_window_rejected():
    bus, _ = make_bus()
    with pytest.raises(ConfigError):
        bus.attach(Echo("z"), 1 << 45, 0)


def test_find_window_and_is_device():
    bus, device = make_bus()
    found = bus.find_window(WINDOW + 8)
    assert found == (device, 8)
    assert bus.is_device(WINDOW)
    assert not bus.is_device(0)
    assert bus.find_window(0) is None


def test_dma_stream_cost_scales_with_words():
    bus, _ = make_bus()
    assert bus.dma_stream_cost(64) == bus.clock.cycles(8)
    assert bus.dma_stream_cost(1) == bus.clock.cycles(1)  # rounds up


def test_stats_counters():
    bus, _ = make_bus()
    bus.write_word(WINDOW, 1, CTX)
    bus.read_word(WINDOW, CTX)
    bus.write_word(0, 1, CTX)
    assert bus.stats.counter("device_writes").value == 1
    assert bus.stats.counter("device_reads").value == 1
    assert bus.stats.counter("ram_writes").value == 1


def test_presets_registry():
    assert "turbochannel-12.5" in BUS_PRESETS
    assert "pci-66" in BUS_PRESETS
