"""Unit tests for the MMU (TLB + table walk + checks)."""

import pytest

from repro.errors import PageFault, ProtectionFault
from repro.hw.mmu import Mmu
from repro.hw.pagetable import PAGE_SIZE, PageTable, Perm, Pte
from repro.hw.tlb import Tlb

V = 0x10000
P = 0x40000


def make_mmu(walk_cost=200):
    mmu = Mmu(Tlb(capacity=4), walk_cost=walk_cost)
    table = PageTable("t")
    table.map_page(V, Pte(P, Perm.RW))
    mmu.activate(table)
    return mmu, table


def test_translate_walk_then_hit():
    mmu, _ = make_mmu()
    first = mmu.translate(V, "read")
    assert not first.tlb_hit
    assert first.cost == 200
    second = mmu.translate(V + 8, "read")
    assert second.tlb_hit
    assert second.cost == 0
    assert second.paddr == P + 8


def test_no_active_table_raises():
    mmu = Mmu(Tlb())
    with pytest.raises(RuntimeError):
        mmu.translate(V, "read")


def test_fault_propagates_from_walk():
    mmu, _ = make_mmu()
    with pytest.raises(PageFault):
        mmu.translate(0xDEAD0000, "read")


def test_protection_enforced_on_tlb_hit():
    mmu, table = make_mmu()
    mmu.translate(V, "read")  # cache it
    table.protect_page(V, Perm.READ)
    # The stale TLB entry still has RW; re-cache by flushing to pick up
    # the change, then verify the cached-entry check path with READ.
    mmu.tlb.flush()
    mmu.translate(V, "read")
    with pytest.raises(ProtectionFault):
        mmu.translate(V, "write")


def test_kernel_mode_bypasses_user_bit_on_hit():
    mmu = Mmu(Tlb())
    table = PageTable()
    table.map_page(V, Pte(P, Perm.RW, user=False))
    mmu.activate(table)
    translation = mmu.translate(V, "write", user_mode=False)
    assert translation.paddr == P
    # Now cached: a user access must still fault.
    with pytest.raises(PageFault):
        mmu.translate(V, "write", user_mode=True)


def test_activate_flushes_by_default():
    mmu, _ = make_mmu()
    mmu.translate(V, "read")
    other = PageTable("other")
    other.map_page(V, Pte(P + PAGE_SIZE, Perm.RW))
    mmu.activate(other)
    translation = mmu.translate(V, "read")
    assert not translation.tlb_hit
    assert translation.paddr == P + PAGE_SIZE


def test_activate_without_flush_keeps_entries():
    mmu, table = make_mmu()
    mmu.translate(V, "read")
    mmu.activate(table, flush=False)
    assert mmu.translate(V, "read").tlb_hit


def test_uncached_attribute_travels():
    mmu = Mmu(Tlb())
    table = PageTable()
    table.map_page(V, Pte(P, Perm.RW, uncached=True))
    mmu.activate(table)
    assert mmu.translate(V, "read").pte.uncached
