"""Admission control: token buckets, backpressure, fairness ledger."""

import pytest

from repro.errors import ConfigError
from repro.service.admission import (
    REASON_BACKPRESSURE,
    REASON_THROTTLED,
    AdmissionController,
    TokenBucket,
)


class TestTokenBucket:
    def test_starts_full(self):
        bucket = TokenBucket(rate=1.0, burst=3.0)
        assert [bucket.take(0.0) for _ in range(4)] == [
            True, True, True, False]

    def test_refills_in_service_time(self):
        bucket = TokenBucket(rate=2.0, burst=2.0)
        for _ in range(2):
            assert bucket.take(0.0)
        assert not bucket.take(0.0)
        # 1 second of service time at 2 tokens/s refills both.
        assert bucket.take(1.0)
        assert bucket.take(1.0)
        assert not bucket.take(1.0)

    def test_burst_caps_accrual(self):
        bucket = TokenBucket(rate=10.0, burst=2.0)
        bucket.refill(100.0)
        assert bucket.tokens == 2.0

    def test_time_never_goes_backwards(self):
        bucket = TokenBucket(rate=1.0, burst=1.0)
        assert bucket.take(5.0)
        bucket.refill(1.0)  # stale timestamp is ignored
        assert not bucket.take(5.0)

    @pytest.mark.parametrize("kwargs", [
        {"rate": 0.0, "burst": 1.0},
        {"rate": -1.0, "burst": 1.0},
        {"rate": 1.0, "burst": 0.5},
    ])
    def test_rejects_bad_config(self, kwargs):
        with pytest.raises(ConfigError):
            TokenBucket(**kwargs)


class TestAdmissionController:
    def test_throttles_past_burst(self):
        ctrl = AdmissionController(rate=1.0, burst=2.0, max_queue_depth=10)
        decisions = [ctrl.admit("a", now_s=0.0, queue_depth=0)
                     for _ in range(3)]
        assert decisions == [(True, None), (True, None),
                             (False, REASON_THROTTLED)]
        assert ctrl.admitted == {"a": 2}
        assert ctrl.rejected == {"a": 1}
        assert ctrl.rejections_by_reason == {REASON_THROTTLED: 1}

    def test_backpressure_sheds_without_charging_bucket(self):
        ctrl = AdmissionController(rate=1.0, burst=1.0, max_queue_depth=4)
        ok, reason = ctrl.admit("a", now_s=0.0, queue_depth=4)
        assert (ok, reason) == (False, REASON_BACKPRESSURE)
        # The bucket was not charged: the next shallow-queue request
        # still has its token.
        assert ctrl.admit("a", now_s=0.0, queue_depth=0) == (True, None)

    def test_buckets_are_per_tenant(self):
        ctrl = AdmissionController(rate=1.0, burst=1.0, max_queue_depth=10)
        assert ctrl.admit("a", now_s=0.0, queue_depth=0)[0]
        assert not ctrl.admit("a", now_s=0.0, queue_depth=0)[0]
        assert ctrl.admit("b", now_s=0.0, queue_depth=0)[0]

    def test_fairness_ledger(self):
        ctrl = AdmissionController(rate=100.0, burst=100.0,
                                   max_queue_depth=10)
        for tenant in ("a", "a", "b", "b"):
            ctrl.admit(tenant, now_s=1.0, queue_depth=0)
        assert ctrl.admitted_fairness() == pytest.approx(1.0)
        assert ctrl.total_admitted == 4
        snapshot = ctrl.snapshot()
        assert snapshot["admitted"] == 4
        assert snapshot["tenants_seen"] == 2

    def test_rejects_bad_queue_depth(self):
        with pytest.raises(ConfigError):
            AdmissionController(max_queue_depth=0)
