"""The soak driver: schedules, determinism, fault verdicts, reports."""

import json

import pytest

from repro.errors import ConfigError
from repro.service.soak import (
    SoakConfig,
    build_schedule,
    deterministic_view,
    run_soak,
    strip_runtime,
    tenant_weights,
)


def small(**overrides):
    defaults = dict(tenants=24, duration_s=4, shards=2, seed=3,
                    incast_period_ticks=10, incast_burst=4)
    defaults.update(overrides)
    return SoakConfig(**defaults)


def test_schedule_is_deterministic():
    config = small()
    assert build_schedule(config) == build_schedule(config)
    assert build_schedule(config) != build_schedule(small(seed=4))


def test_zipf_skews_offered_load_to_head_tenants():
    config = small(tenants=50, duration_s=30, skew="zipf", zipf_s=1.2)
    counts = {}
    for entries in build_schedule(config):
        for tenant, *_ in entries:
            counts[tenant] = counts.get(tenant, 0) + 1
    head = sum(counts.get(f"t{i:04d}", 0) for i in range(5))
    tail = sum(counts.get(f"t{i:04d}", 0) for i in range(45, 50))
    assert head > 3 * max(tail, 1)


def test_uniform_weights_are_flat():
    assert set(tenant_weights(small(skew="uniform"))) == {1.0}
    weights = tenant_weights(small(skew="zipf"))
    assert weights[0] > weights[-1]


def test_incast_bursts_override_the_shard():
    config = small(incast_period_ticks=5, incast_burst=3)
    overrides = [entry for entries in build_schedule(config)
                 for entry in entries if entry[4] is not None]
    assert overrides
    assert all(0 <= entry[4] < config.shards for entry in overrides)
    assert all(entry[3] for entry in overrides)  # incast is hot traffic


def test_soak_report_shape_and_serializability():
    report = run_soak(small())
    assert report["benchmark"] == "service_soak"
    requests = report["requests"]
    assert requests["generated"] == (requests["admitted"]
                                     + requests["rejected"])
    assert report["goodput_mbytes_per_s"] > 0
    assert report["latency_us"]["p99"] >= report["latency_us"]["p50"]
    assert 0 < report["fairness"]["jain_completions"] <= 1
    assert report["trend"]["kind"] == "service_trend"
    assert report["faults"]["verdict"] == "CLEAN"
    assert "vs_faultfree" not in report  # no faults -> no control run
    json.dumps(strip_runtime(report))  # must serialize cleanly
    assert "_service" not in strip_runtime(report)


def test_same_seed_reproduces_the_report():
    config = small(fault_rate=0.1)
    first = deterministic_view(run_soak(config))
    second = deterministic_view(run_soak(config))
    assert json.dumps(first, sort_keys=True) == json.dumps(
        second, sort_keys=True)
    assert "wall" not in first


def test_different_seed_changes_the_report():
    first = deterministic_view(run_soak(small(seed=3)))
    second = deterministic_view(run_soak(small(seed=4)))
    assert json.dumps(first, sort_keys=True) != json.dumps(
        second, sort_keys=True)


def test_faulted_soak_recovers_without_isolation_violations():
    report = run_soak(small(tenants=40, duration_s=8, fault_rate=0.1))
    assert report["faults"]["injected"] > 0
    assert report["faults"]["verdict"] in ("RECOVERED", "CLEAN")
    assert report["requests"]["wrong_transfers"] == 0
    assert report["faults"]["sweep_problems"] == []
    assert report["vs_faultfree"]["goodput_ratio"] >= 0.9


def test_fault_plan_file_format_is_accepted():
    plan = {"seed": 2, "rules": [
        {"kind": "drop", "target": "completion", "probability": 0.2}]}
    report = run_soak(small(fault_plan=plan))
    assert report["faults"]["enabled"]
    assert report["faults"]["injected"] > 0
    assert report["config"]["fault_plan"] == plan


def test_no_control_run_skips_the_comparison():
    report = run_soak(small(fault_rate=0.1, control_run=False))
    assert "vs_faultfree" not in report
    assert report["faults"]["verdict"] in ("RECOVERED", "DEGRADED")


def test_spans_enable_the_fleet_trace():
    report = run_soak(small(tenants=8, duration_s=2, spans=True))
    service = report["_service"]
    trace = service.fleet_trace()
    assert trace["traceEvents"]
    pids = {event["pid"] for event in trace["traceEvents"]}
    # Front end is process 1, then one process per shard.
    assert pids == {1, 2, 3}
    # Merged ordering is deterministic: metadata first, then
    # timestamp-ordered with the stable global tie-break.
    order = [(e["ph"] == "M", e.get("ts", 0.0))
             for e in trace["traceEvents"]]
    assert order == sorted(order, key=lambda item: (not item[0], item[1]))


def test_config_validation():
    with pytest.raises(ConfigError):
        SoakConfig(tenants=0)
    with pytest.raises(ConfigError):
        SoakConfig(duration_s=0)
    with pytest.raises(ConfigError):
        SoakConfig(skew="bogus")
    with pytest.raises(ConfigError):
        SoakConfig(rate=0.0)
