"""End-to-end trace propagation: one connected causal tree per request.

Each test drives the real front end + shard pool with a fault plan that
forces one outcome class, then reassembles every request's spans across
the frontend and shard tracers with
:func:`repro.obs.context.causal_tree` — the property the ISSUE's
acceptance check states: every DMA attempt, *including its retries,
kernel fallbacks, and fault injections*, yields exactly one schema-valid
causal tree spanning process boundaries.
"""

import asyncio
import json

from repro.obs.context import causal_tree, make_trace_id
from repro.obs.flightrec import REASON_WRONG_DATA
from repro.service.frontend import DmaService, ServiceConfig
from repro.service.requests import (
    OUTCOME_ABORTED,
    OUTCOME_COMPLETED,
    OUTCOME_FELL_BACK,
    OUTCOME_RETRIED,
    Request,
)


def run(coro):
    return asyncio.run(coro)


def config(**overrides):
    defaults = dict(shards=2, seed=3, spans_enabled=True,
                    telemetry_window_ticks=2,
                    admission_rate=1000.0, admission_burst=1000.0)
    defaults.update(overrides)
    return ServiceConfig(**defaults)


async def drive(cfg, n=6, size=512):
    service = DmaService(cfg)
    await service.start()
    futures = [await service.submit(
        Request(tenant=f"t{i % 3}", size=size, req_id=i))
        for i in range(n)]
    await service.shutdown(drain=True)
    return service, [f.result() for f in futures]


def all_spans(service):
    spans = list(service.spans.finished())
    for shard in service.shards:
        spans.extend(shard.ws.spans.finished())
    return spans


def assert_connected_trees(service, completions):
    """Every completion's trace is one tree rooted at the front end."""
    spans = all_spans(service)
    for completion in completions:
        trace = completion.request.trace
        assert trace is not None
        assert trace.trace_id == make_trace_id(
            service.config.seed, completion.request.req_id)
        tree = causal_tree(spans, trace.trace_id)
        assert tree["root"].name == "request"
        assert tree["processes"][0] == "frontend"
        assert f"shard{completion.shard}" in tree["processes"]
        names = {s.name for s in tree["spans"]}
        assert "shard.execute" in names
    return spans


def test_completed_requests_form_connected_trees():
    service, completions = run(drive(config()))
    assert {c.outcome for c in completions} == {OUTCOME_COMPLETED}
    assert_connected_trees(service, completions)


def test_retried_requests_keep_their_retry_spans_in_tree():
    plan = {"seed": 1, "rules": [
        {"kind": "drop", "target": "completion", "nth": 1, "count": 1}]}
    service, completions = run(drive(config(fault_plan=plan)))
    retried = [c for c in completions if c.outcome == OUTCOME_RETRIED]
    assert retried  # nth=1 per shard guarantees at least one
    spans = assert_connected_trees(service, completions)
    for completion in retried:
        assert completion.attempts > 1
        tree = causal_tree(spans, completion.request.trace.trace_id)
        names = [s.name for s in tree["spans"]]
        # One initiation span per attempt, plus the backoff between.
        assert names.count("dma.initiate") == completion.attempts
        assert "dma.backoff" in names


def test_kernel_fallback_spans_stay_in_tree():
    plan = {"seed": 1, "rules": [
        {"kind": "drop", "target": "completion", "probability": 1.0}]}
    service, completions = run(drive(config(fault_plan=plan)))
    assert {c.outcome for c in completions} == {OUTCOME_FELL_BACK}
    spans = assert_connected_trees(service, completions)
    for completion in completions:
        tree = causal_tree(spans, completion.request.trace.trace_id)
        names = [s.name for s in tree["spans"]]
        assert "dma.fallback" in names


def test_aborted_requests_form_connected_trees():
    # kernel_immune=False also kills the fallback path: every retry
    # and the final kernel attempt lose their completions -> aborted.
    plan = {"seed": 1, "rules": [
        {"kind": "drop", "target": "completion", "probability": 1.0,
         "kernel_immune": False}]}
    service, completions = run(drive(config(fault_plan=plan)))
    assert {c.outcome for c in completions} == {OUTCOME_ABORTED}
    assert not any(c.ok for c in completions)
    assert_connected_trees(service, completions)


def test_fault_injections_carry_the_victim_trace_id():
    plan = {"seed": 1, "rules": [
        {"kind": "drop", "target": "completion", "nth": 1, "count": 1}]}
    service, completions = run(drive(config(fault_plan=plan)))
    spans = assert_connected_trees(service, completions)
    fault_spans = [s for s in spans if s.name.startswith("fault.")]
    assert fault_spans
    victim_ids = {s.attrs["trace_id"] for s in fault_spans}
    all_ids = {c.request.trace.trace_id for c in completions}
    assert victim_ids <= all_ids
    # The injected fault is part of its victim's causal tree.
    for trace_id in victim_ids:
        tree = causal_tree(spans, trace_id)
        assert any(s.name.startswith("fault.") for s in tree["spans"])


def test_rejected_requests_still_carry_a_trace():
    async def scenario():
        service = DmaService(config(shards=1, max_queue_depth=1))
        await service.start()
        futures = [await service.submit(
            Request(tenant=f"t{i}", size=256, req_id=i))
            for i in range(6)]
        await service.shutdown(drain=True)
        return service, [f.result() for f in futures]

    service, completions = run(scenario())
    rejected = [c for c in completions if c.outcome == "rejected"]
    assert rejected
    spans = service.spans.finished()
    for completion in rejected:
        trace = completion.request.trace
        assert trace is not None
        tree = causal_tree(spans, trace.trace_id)
        names = {s.name for s in tree["spans"]}
        # Admission decided; no shard work ever happened.
        assert names == {"request", "admission"}


def test_exemplars_resolve_to_complete_traces():
    """100% of p99-bucket exemplars name reassemblable causal trees."""
    service, completions = run(drive(config(), n=12))
    spans = all_spans(service)
    exemplars = service.telemetry.latency_exemplars(99.0)
    assert exemplars
    for exemplar in exemplars:
        tree = causal_tree(spans, exemplar["trace_id"])
        assert tree["root"].name == "request"


async def wrong_data_scenario():
    service = DmaService(config(shards=1))
    await service.start()
    await service.submit(Request(tenant="victim", size=256, req_id=1))
    await service.advance_tick()  # executes; registers the tenant
    shard = service.shards[0]
    tenant = shard.tenant("victim")
    shard.ws.ram.write(tenant.src_paddr, bytes(64))
    future = await service.submit(
        Request(tenant="victim", size=64, req_id=2))
    await service.shutdown(drain=True)
    completion = future.result()
    # Repair so the shutdown sweep already ran against the tampered
    # source -- the report is what it is; we only need the bundle.
    return service, completion


def test_wrong_data_postmortem_is_seed_reproducible():
    service, completion = run(wrong_data_scenario())
    assert completion.outcome == "wrong-data"
    bundles = [b for b in service.postmortems()
               if b["reason"] == REASON_WRONG_DATA]
    assert len(bundles) == 1
    bundle = bundles[0]
    assert bundle["offending"][0]["req_id"] == 2
    assert bundle["offending"][0]["trace_id"] == make_trace_id(3, 2)
    assert bundle["seed"] == service.config.seed
    # Same seed, same scenario -> byte-identical bundle.
    replay, _ = run(wrong_data_scenario())
    replay_bundle = [b for b in replay.postmortems()
                     if b["reason"] == REASON_WRONG_DATA][0]
    assert json.dumps(bundle, sort_keys=True) == json.dumps(
        replay_bundle, sort_keys=True)
