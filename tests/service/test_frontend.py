"""The asyncio front end: routing, admission, shutdown, TCP serving."""

import asyncio
import json

import pytest

from repro.errors import ConfigError
from repro.service.admission import (
    REASON_BACKPRESSURE,
    REASON_SHUTDOWN,
)
from repro.service.frontend import (
    DmaService,
    ServiceConfig,
    serve_forever,
    shard_of,
)
from repro.service.requests import OUTCOME_REJECTED, Request


def run(coro):
    return asyncio.run(coro)


def small_config(**overrides):
    defaults = dict(shards=2, seed=3, telemetry_window_ticks=2)
    defaults.update(overrides)
    return ServiceConfig(**defaults)


def test_shard_of_is_stable_and_in_range():
    assert shard_of("alice", 4) == shard_of("alice", 4)
    assert 0 <= shard_of("alice", 4) < 4
    spread = {shard_of(f"t{i}", 4) for i in range(64)}
    assert spread == {0, 1, 2, 3}


def test_submit_completes_requests():
    async def scenario():
        service = DmaService(small_config())
        await service.start()
        futures = [await service.submit(
            Request(tenant=f"t{i}", size=512, req_id=i))
            for i in range(6)]
        await service.shutdown(drain=True)
        return [f.result() for f in futures]

    completions = run(scenario())
    assert all(c.ok for c in completions)
    assert {c.shard for c in completions} <= {0, 1}


def test_submit_before_start_raises():
    async def scenario():
        service = DmaService(small_config())
        with pytest.raises(ConfigError):
            await service.submit(Request(tenant="a"))

    run(scenario())


def test_route_respects_shard_override_and_validates():
    async def scenario():
        service = DmaService(small_config())
        assert service.route(Request(tenant="a", shard=1)) == 1
        with pytest.raises(ConfigError):
            service.route(Request(tenant="a", shard=9))

    run(scenario())


def test_backpressure_rejects_when_queue_is_deep():
    async def scenario():
        service = DmaService(small_config(
            shards=1, max_queue_depth=2,
            admission_rate=1000.0, admission_burst=1000.0))
        await service.start()
        # Submissions within one tick pile up before the worker runs.
        futures = [await service.submit(
            Request(tenant=f"t{i}", size=256, req_id=i))
            for i in range(5)]
        await service.shutdown(drain=True)
        return [f.result() for f in futures]

    completions = run(scenario())
    rejected = [c for c in completions if c.outcome == OUTCOME_REJECTED]
    assert len(rejected) == 3
    assert all(c.reason == REASON_BACKPRESSURE for c in rejected)
    assert all(not c.ok for c in rejected)


def test_throttled_tenant_is_shed_but_queue_still_served():
    async def scenario():
        service = DmaService(small_config(
            shards=1, admission_rate=1.0, admission_burst=2.0))
        await service.start()
        futures = [await service.submit(
            Request(tenant="hog", size=256, req_id=i))
            for i in range(4)]
        await service.shutdown(drain=True)
        return [f.result() for f in futures]

    completions = run(scenario())
    outcomes = [c.outcome for c in completions]
    assert outcomes.count(OUTCOME_REJECTED) == 2
    assert sum(1 for c in completions if c.ok) == 2


def test_graceful_shutdown_drains_in_flight_requests():
    async def scenario():
        service = DmaService(small_config(shards=2))
        await service.start()
        futures = [await service.submit(
            Request(tenant=f"t{i}", size=1024, req_id=i))
            for i in range(20)]
        # No tick ever advanced: everything is still queued when the
        # shutdown begins.  Draining must complete all of it.
        problems = await service.shutdown(drain=True)
        return futures, problems

    futures, problems = run(scenario())
    assert problems == []
    assert all(f.done() for f in futures)
    assert all(f.result().ok for f in futures)


def test_shutdown_rejects_new_submissions():
    async def scenario():
        service = DmaService(small_config())
        await service.start()
        await service.shutdown(drain=True)
        future = await service.submit(Request(tenant="late"))
        return future.result()

    completion = run(scenario())
    assert completion.outcome == OUTCOME_REJECTED
    assert completion.reason == REASON_SHUTDOWN


def test_ticks_close_trend_windows():
    async def scenario():
        service = DmaService(small_config(shards=1,
                                          telemetry_window_ticks=2))
        await service.start()
        for i in range(4):
            await service.submit(Request(tenant="a", size=512, req_id=i))
            await service.advance_tick()
        await service.shutdown(drain=True)
        return service

    service = run(scenario())
    assert len(service.telemetry.history.points) >= 2
    assert service.telemetry.completed > 0
    snapshot = service.snapshot()
    assert snapshot["goodput_mbytes_per_s"] > 0
    assert snapshot["telemetry"]["latency_us"]["p99"] > 0


def test_fault_plan_is_derived_per_shard():
    plan = {"seed": 5, "rules": [{"kind": "drop", "target": "completion",
                                  "probability": 0.5}]}

    async def scenario():
        service = DmaService(small_config(shards=2, fault_plan=plan))
        await service.start()
        for i in range(10):
            await service.submit(
                Request(tenant=f"t{i}", size=512, req_id=i))
        await service.shutdown(drain=True)
        return service

    service = run(scenario())
    counters = service.fleet_counters()
    assert counters["faults"] > 0
    # Distinct per-shard streams: seeds differ.
    seeds = {shard.index for shard in service.shards
             if shard.faults_injected >= 0}
    assert seeds == {0, 1}


def test_tcp_roundtrip_and_stats():
    async def scenario():
        ready = asyncio.Event()
        server = asyncio.get_running_loop().create_task(serve_forever(
            small_config(shards=1), ready=ready, max_connections=1))
        await ready.wait()
        reader, writer = await asyncio.open_connection(
            "127.0.0.1", ready.port)
        responses = []
        for line in (
                {"tenant": "alice", "kind": "dma", "size": 512},
                {"op": "stats"},
                "not json at all",
                {"tenant": "bob", "bogus_field": 1},
        ):
            raw = (line if isinstance(line, str)
                   else json.dumps(line))
            writer.write(raw.encode() + b"\n")
            await writer.drain()
            responses.append(json.loads(await reader.readline()))
        writer.close()
        await server
        return responses

    dma, stats, bad_json, bad_field = run(scenario())
    assert dma["ok"] is True
    assert dma["tenant"] == "alice"
    assert dma["bytes_moved"] == 512
    assert stats["telemetry"]["completed"] == 1
    assert "error" in bad_json
    assert "bogus_field" in bad_field["error"]


def test_service_config_validation():
    with pytest.raises(ConfigError):
        ServiceConfig(shards=0)
    with pytest.raises(ConfigError):
        ServiceConfig(tick_hz=0)
