"""One shard: tenant registration, execution, verification, faults."""

import pytest

from repro.errors import ConfigError
from repro.faults.plan import FaultPlan, FaultRule, bernoulli_plan
from repro.service.requests import (
    OUTCOME_COMPLETED,
    OUTCOME_WRONG_DATA,
    Completion,
    Request,
)
from repro.service.shard import (
    TENANT_BUFFER_BYTES,
    ServiceShard,
    ShardConfig,
    shard_seed,
)


def test_shard_seeds_are_distinct_and_stable():
    seeds = [shard_seed(7, i) for i in range(16)]
    assert len(set(seeds)) == 16
    assert seeds == [shard_seed(7, i) for i in range(16)]
    assert shard_seed(7, 0) != shard_seed(8, 0)


def test_dma_request_roundtrip():
    shard = ServiceShard(0, ShardConfig(seed=1))
    completion = shard.execute(Request(tenant="alice", size=1024))
    assert completion.ok
    assert completion.outcome == OUTCOME_COMPLETED
    assert completion.bytes_moved == 1024
    assert completion.latency_us > 0.0
    assert completion.shard == 0
    assert shard.wrong_page_sweep() == []


def test_oversized_requests_are_capped_to_one_page():
    shard = ServiceShard(0, ShardConfig(seed=1))
    completion = shard.execute(Request(tenant="alice", size=999999))
    assert completion.ok
    assert completion.bytes_moved == 4096


def test_tenants_register_lazily_and_keep_state():
    shard = ServiceShard(0, ShardConfig(seed=1))
    shard.execute(Request(tenant="a"))
    shard.execute(Request(tenant="b"))
    shard.execute(Request(tenant="a"))
    assert shard.n_tenants == 2
    assert shard.requests_executed == 3


def test_many_tenants_overflow_to_kernel_channels():
    """Register contexts run out; later tenants still get service (§3.2)."""
    shard = ServiceShard(0, ShardConfig(seed=1, n_contexts=2))
    for i in range(6):
        completion = shard.execute(Request(tenant=f"t{i}", size=512))
        assert completion.ok, completion
    assert shard.n_tenants == 6
    assert shard.wrong_page_sweep() == []


def test_hot_requests_share_the_receiver_buffer():
    shard = ServiceShard(0, ShardConfig(seed=1, hot_slots=2))
    for i in range(4):
        completion = shard.execute(
            Request(tenant=f"t{i}", size=2048, hot=True))
        assert completion.ok
    assert shard.wrong_page_sweep() == []


def test_atomic_and_message_requests():
    shard = ServiceShard(0, ShardConfig(seed=1, atomics=True))
    atomic = shard.execute(Request(tenant="a", kind="atomic"))
    assert atomic.ok and atomic.bytes_moved == 8
    message = shard.execute(Request(tenant="a", kind="message", size=512))
    assert message.ok and message.bytes_moved == 512
    assert shard.wrong_page_sweep() == []


def test_atomic_degrades_to_dma_without_atomic_unit():
    shard = ServiceShard(0, ShardConfig(seed=1, atomics=False))
    completion = shard.execute(Request(tenant="a", kind="atomic"))
    assert completion.ok
    assert completion.bytes_moved > 8  # served as a DMA


def test_message_channels_are_capped():
    shard = ServiceShard(0, ShardConfig(seed=1, max_message_channels=1))
    first = shard.execute(Request(tenant="a", kind="message", size=256))
    second = shard.execute(Request(tenant="b", kind="message", size=256))
    assert first.ok and second.ok
    # Only one ring was built; the second tenant degraded to DMA.
    assert shard._message_channels == 1


def test_wrong_data_detected_and_region_restored():
    shard = ServiceShard(0, ShardConfig(seed=1))
    shard.execute(Request(tenant="a", size=256))  # registers the tenant
    tenant = shard.tenant("a")
    # Corrupt the source: the transfer now lands bytes that differ from
    # the registered pattern.
    shard.ws.ram.write(tenant.src_paddr, bytes(64))
    completion = shard.execute(Request(tenant="a", size=64))
    assert not completion.ok
    assert completion.outcome == OUTCOME_WRONG_DATA
    assert shard.wrong_data == 1
    # The destination canary was re-armed; only the source remains
    # tampered (which the sweep reports).
    problems = shard.wrong_page_sweep()
    assert problems == ["a: source pattern tampered"]
    # Repair the source; the shard is clean again.
    shard.ws.ram.write(tenant.src_paddr, tenant.pattern)
    ok = shard.execute(Request(tenant="a", size=64))
    assert ok.ok
    assert shard.wrong_page_sweep() == []


def test_identical_seeds_replay_identically():
    def run():
        shard = ServiceShard(0, ShardConfig(seed=9))
        out = []
        for i in range(8):
            completion = shard.execute(
                Request(tenant=f"t{i % 3}", size=512, hot=i % 2 == 0))
            out.append((completion.outcome, completion.latency_us,
                        completion.attempts))
        return out

    assert run() == run()


def test_fault_plan_attach_detach_and_counters():
    shard = ServiceShard(0, ShardConfig(seed=1))
    plan = FaultPlan(rules=[FaultRule(kind="drop", target="completion",
                                      nth=1, count=1)], seed=0)
    shard.attach_faults(plan)
    completion = shard.execute(Request(tenant="a", size=512))
    assert completion.ok
    assert completion.attempts > 1  # the dropped completion forced a retry
    assert shard.faults_injected == 1
    shard.detach_faults()
    assert shard.faults_injected == 1  # survives detach
    clean = shard.execute(Request(tenant="a", size=512))
    assert clean.attempts == 1
    assert shard.wrong_page_sweep() == []


def test_soaked_shard_under_faults_stays_isolated():
    shard = ServiceShard(0, ShardConfig(seed=5))
    shard.attach_faults(bernoulli_plan(0.2, seed=5))
    outcomes = [shard.execute(Request(tenant=f"t{i % 4}", size=1024,
                                      hot=i % 3 == 0))
                for i in range(40)]
    assert shard.faults_injected > 0
    assert all(isinstance(c, Completion) for c in outcomes)
    # Detected wrong-data is allowed; isolation violations are not.
    assert shard.wrong_page_sweep() == []
    assert shard.wrong_transfers == 0


def test_counters_and_snapshot_shape():
    shard = ServiceShard(2, ShardConfig(seed=1))
    shard.execute(Request(tenant="a"))
    counters = shard.counters()
    assert set(counters) == {"retries", "completion_timeouts",
                             "kernel_fallbacks", "retry_exhausted"}
    snapshot = shard.snapshot()
    assert snapshot["shard"] == 2
    assert snapshot["tenants"] == 1
    assert snapshot["requests"] == 1
    assert snapshot["bytes_moved"] == 1024
    assert snapshot["wrong_data"] == 0
    assert snapshot["wrong_transfers"] == 0
    assert snapshot["sim_elapsed_us"] > 0


def test_request_validation():
    with pytest.raises(ConfigError):
        Request(tenant="", size=64)
    with pytest.raises(ConfigError):
        Request(tenant="a", kind="bogus")
    with pytest.raises(ConfigError):
        Request(tenant="a", size=0)
    with pytest.raises(ConfigError):
        Request.from_dict({"tenant": "a", "nope": 1})
    with pytest.raises(ConfigError):
        Request.from_dict({"kind": "dma"})


def test_pattern_and_canary_are_tenant_specific():
    shard = ServiceShard(0, ShardConfig(seed=1))
    shard.execute(Request(tenant="a"))
    shard.execute(Request(tenant="b"))
    a, b = shard.tenant("a"), shard.tenant("b")
    assert a.pattern != b.pattern
    assert a.canary != b.canary
    assert len(a.pattern) == TENANT_BUFFER_BYTES
