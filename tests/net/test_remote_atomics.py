"""Remote atomic operations across the NOW (§3.5 on the cluster)."""

import pytest

from repro.core.atomics import AtomicChannel
from repro.core.machine import MachineConfig
from repro.net import ATM_155, GIGABIT, Cluster
from repro.units import to_us


def cluster_with_counter(mode="extshadow", link=ATM_155):
    cluster = Cluster(2, link_spec=link,
                      config=MachineConfig(method="keyed",
                                           atomic_mode=mode))
    ws0, ws1 = cluster.nodes
    client = ws0.kernel.spawn("client")
    ws0.kernel.enable_user_atomics(client)
    owner = ws1.kernel.spawn("owner")
    counter = ws1.kernel.alloc_buffer(owner, 8192, shadow=False)
    ws1.ram.write_word(counter.paddr, 100)
    window = ws0.kernel.map_remote_atomic_window(
        client, ws1.nic.global_address(counter.paddr), 8192)
    return cluster, ws0, ws1, client, counter, window


@pytest.mark.parametrize("mode", ["keyed", "extshadow"])
def test_remote_atomic_add(mode):
    cluster, ws0, ws1, client, counter, window = cluster_with_counter(
        mode)
    chan = AtomicChannel(ws0, client)
    result = chan.atomic_add(window, 5)
    assert result.ok
    assert result.old_value == 100
    assert ws1.ram.read_word(counter.paddr) == 105


def test_remote_cas():
    cluster, ws0, ws1, client, counter, window = cluster_with_counter()
    chan = AtomicChannel(ws0, client)
    assert chan.compare_and_swap(window, 100, 7).old_value == 100
    assert ws1.ram.read_word(counter.paddr) == 7
    # Failed compare leaves remote memory alone.
    assert chan.compare_and_swap(window, 100, 9).old_value == 7
    assert ws1.ram.read_word(counter.paddr) == 7


def test_remote_atomic_pays_the_round_trip():
    cluster, ws0, ws1, client, counter, window = cluster_with_counter()
    local_buf = ws0.kernel.alloc_buffer(client, 8192, shadow=False)
    chan = AtomicChannel(ws0, client)
    chan.atomic_add(local_buf.vaddr, 0)  # warm
    chan.atomic_add(window, 0)
    local = chan.atomic_add(local_buf.vaddr, 1)
    remote = chan.atomic_add(window, 1)
    rtt_us = to_us(ws0.atomic_unit.remote_rtt)
    assert remote.elapsed_us > local.elapsed_us + rtt_us * 0.9
    assert rtt_us > 15  # two ATM-155 latencies


def test_faster_link_means_cheaper_remote_atomics():
    slow = cluster_with_counter(link=ATM_155)
    fast = cluster_with_counter(link=GIGABIT)
    assert (fast[1].atomic_unit.remote_rtt
            < slow[1].atomic_unit.remote_rtt)


def test_two_clients_share_one_remote_counter():
    cluster = Cluster(3, config=MachineConfig(method="keyed",
                                              atomic_mode="extshadow"))
    home = cluster.node(2)
    owner = home.kernel.spawn("owner")
    counter = home.kernel.alloc_buffer(owner, 8192, shadow=False)
    total = 0
    for node_id in (0, 1):
        ws = cluster.node(node_id)
        client = ws.kernel.spawn(f"client{node_id}")
        ws.kernel.enable_user_atomics(client)
        window = ws.kernel.map_remote_atomic_window(
            client, home.nic.global_address(counter.paddr), 8192)
        chan = AtomicChannel(ws, client)
        for _ in range(5):
            assert chan.atomic_add(window, 1).ok
            total += 1
    assert home.ram.read_word(counter.paddr) == total


def test_unknown_remote_node_fails():
    cluster, ws0, ws1, client, counter, window = cluster_with_counter()
    bogus = ws0.kernel.map_remote_atomic_window(
        client, (9 << 28), 8192)  # node 9 does not exist
    chan = AtomicChannel(ws0, client)
    assert not chan.atomic_add(bogus, 1).ok
