"""Integration tests for the NOW cluster: remote user-level DMA."""

import pytest

from repro.core.api import DmaChannel
from repro.core.machine import MachineConfig
from repro.errors import NetworkError
from repro.net import ATM_155, ATM_622, Cluster


def two_node_cluster(method="extshadow", link=ATM_155):
    cluster = Cluster(2, link_spec=link,
                      config=MachineConfig(method=method))
    sender_ws = cluster.node(0)
    receiver_ws = cluster.node(1)
    sender = sender_ws.kernel.spawn("sender")
    if method != "kernel":
        sender_ws.kernel.enable_user_dma(sender)
    src = sender_ws.kernel.alloc_buffer(sender, 8192)
    receiver = receiver_ws.kernel.spawn("receiver")
    dst = receiver_ws.kernel.alloc_buffer(receiver, 8192, shadow=False)
    window = sender_ws.kernel.map_remote_window(
        sender, receiver_ws.nic.global_address(dst.paddr), 8192)
    return cluster, sender_ws, receiver_ws, sender, src, dst, window


def test_nodes_share_one_timeline():
    cluster = Cluster(3)
    assert all(ws.sim is cluster.sim for ws in cluster.nodes)


def test_remote_user_level_dma_moves_data():
    (cluster, sender_ws, receiver_ws, sender, src, dst,
     window) = two_node_cluster()
    sender_ws.ram.write(src.paddr, b"over the wire")
    chan = DmaChannel(sender_ws, sender)
    result = chan.initiate(src.vaddr, window, 13)
    assert result.ok
    cluster.run_until_quiet()
    assert receiver_ws.ram.read(dst.paddr, 13) == b"over the wire"
    assert cluster.deliveries == 1


def test_remote_transfer_includes_link_time():
    (cluster, sender_ws, receiver_ws, sender, src, dst,
     window) = two_node_cluster()
    chan = DmaChannel(sender_ws, sender)
    chan.initiate(src.vaddr, window, 4096)
    start = cluster.sim.now
    cluster.run_until_quiet()
    elapsed = cluster.sim.now - start
    assert elapsed >= ATM_155.wire_time(4096)


def test_faster_link_delivers_sooner():
    times = {}
    for link in (ATM_155, ATM_622):
        (cluster, sender_ws, _, sender, src, _, window
         ) = two_node_cluster(link=link)
        chan = DmaChannel(sender_ws, sender)
        chan.initiate(src.vaddr, window, 8192)
        start = cluster.sim.now
        cluster.run_until_quiet()
        times[link.name] = cluster.sim.now - start
    assert times["atm-622"] < times["atm-155"]


def test_kernel_method_also_reaches_remote():
    (cluster, sender_ws, receiver_ws, sender, src, dst,
     window) = two_node_cluster(method="kernel")
    sender_ws.ram.write(src.paddr, b"via syscall")
    chan = DmaChannel(sender_ws, sender)
    result = chan.initiate(src.vaddr, window, 11)
    assert result.ok
    cluster.run_until_quiet()
    assert receiver_ws.ram.read(dst.paddr, 11) == b"via syscall"


def test_ping_pong_round_trip():
    cluster = Cluster(2, config=MachineConfig(method="extshadow"))
    ws0, ws1 = cluster.node(0), cluster.node(1)
    procs, bufs, windows, chans = [], [], [], []
    for ws in (ws0, ws1):
        proc = ws.kernel.spawn()
        ws.kernel.enable_user_dma(proc)
        buf = ws.kernel.alloc_buffer(proc, 8192)
        procs.append(proc)
        bufs.append(buf)
    windows.append(ws0.kernel.map_remote_window(
        procs[0], ws1.nic.global_address(bufs[1].paddr), 8192))
    windows.append(ws1.kernel.map_remote_window(
        procs[1], ws0.nic.global_address(bufs[0].paddr), 8192))
    chans = [DmaChannel(ws0, procs[0]), DmaChannel(ws1, procs[1])]
    ws0.ram.write(bufs[0].paddr, b"ping")
    chans[0].initiate(bufs[0].vaddr, windows[0], 4)
    cluster.run_until_quiet()
    assert ws1.ram.read(bufs[1].paddr, 4) == b"ping"
    ws1.ram.write(bufs[1].paddr, b"pong")
    chans[1].initiate(bufs[1].vaddr, windows[1], 4)
    cluster.run_until_quiet()
    assert ws0.ram.read(bufs[0].paddr, 4) == b"pong"


def test_unknown_node_and_link_rejected():
    cluster = Cluster(2)
    with pytest.raises(NetworkError):
        cluster.node(5)
    with pytest.raises(NetworkError):
        cluster.link_between(0, 0)


def test_full_mesh_links():
    cluster = Cluster(4)
    for a in range(4):
        for b in range(a + 1, 4):
            assert cluster.link_between(a, b) is not None


def test_empty_cluster_rejected():
    with pytest.raises(NetworkError):
        Cluster(0)


def test_node_ids_wired_into_nics():
    cluster = Cluster(3)
    assert [ws.nic.node_id for ws in cluster.nodes] == [0, 1, 2]
