"""Unit tests for links and link presets."""

import pytest

from repro.errors import NetworkError
from repro.net.link import ATM_155, ATM_622, GIGABIT, Link, LinkSpec
from repro.net.message import Message
from repro.sim.engine import Simulator
from repro.units import mbps, to_us, us


def make_link(spec=ATM_155):
    sim = Simulator()
    return sim, Link(sim, spec, 0, 1)


def msg(size=100, src=0, dst=1, sent_at=0):
    return Message(src_node=src, dst_node=dst, pdst_local=0,
                   payload=bytes(size), sent_at=sent_at)


def test_wire_time_matches_bandwidth():
    spec = LinkSpec("t", mbps(100), latency=0, per_message_overhead=0)
    # 1250 bytes = 10_000 bits at 100 Mb/s = 100 us.
    assert to_us(spec.wire_time(1250)) == pytest.approx(100.0)


def test_delivery_time_adds_latency():
    spec = LinkSpec("t", mbps(100), latency=us(7), per_message_overhead=0)
    assert spec.delivery_time(1250) == spec.wire_time(1250) + us(7)


def test_presets_ordering():
    size = 4096
    assert (ATM_155.delivery_time(size) > ATM_622.delivery_time(size)
            > GIGABIT.delivery_time(size))


def test_send_delivers_at_modelled_time():
    sim, link = make_link()
    delivered = []
    arrival = link.send(msg(100), delivered.append)
    assert delivered == []
    sim.run()
    assert len(delivered) == 1
    assert sim.now == arrival
    assert arrival == ATM_155.delivery_time(100)


def test_fifo_queueing_on_busy_link():
    sim, link = make_link()
    order = []
    first = link.send(msg(10_000), lambda m: order.append("big"))
    second = link.send(msg(10), lambda m: order.append("small"))
    sim.run()
    assert order == ["big", "small"]
    # The small message waited for the big one's wire time.
    assert second > first - ATM_155.latency


def test_wrong_endpoints_rejected():
    _, link = make_link()
    with pytest.raises(NetworkError):
        link.send(msg(10, src=5, dst=6), lambda m: None)


def test_either_direction_accepted():
    sim, link = make_link()
    seen = []
    link.send(msg(8, src=1, dst=0), seen.append)
    sim.run()
    assert len(seen) == 1


def test_counters():
    sim, link = make_link()
    link.send(msg(100), lambda m: None)
    link.send(msg(200), lambda m: None)
    sim.run()
    assert link.messages_carried == 2
    assert link.bytes_carried == 300


def test_idle_link_has_no_backlog():
    sim, link = make_link()
    link.send(msg(10_000), lambda m: None)
    assert link.utilization_window > 0
    sim.run()
    assert link.utilization_window == 0


def test_message_metadata():
    a = msg(5)
    b = msg(5)
    assert a.size == 5
    assert a.seq != b.seq
    assert "->" in repr(a)
