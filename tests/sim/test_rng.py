"""Unit tests for seeded randomness and the key stream."""

import pytest

from repro.sim.rng import (
    KEY_BITS,
    guess_probability,
    make_rng,
    make_secret_stream,
)


def test_same_seed_same_stream():
    a = make_rng(7, "x")
    b = make_rng(7, "x")
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_different_streams_are_independent():
    a = make_rng(7, "x")
    b = make_rng(7, "y")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_secret_stream_deterministic():
    first = [next(make_secret_stream(3)) for _ in range(1)]
    second = [next(make_secret_stream(3)) for _ in range(1)]
    assert first == second


def test_secret_stream_keys_fit_width_and_nonzero():
    stream = make_secret_stream(11)
    for _ in range(100):
        key = next(stream)
        assert 0 < key < (1 << KEY_BITS)


def test_secret_streams_differ_by_seed():
    assert next(make_secret_stream(1)) != next(make_secret_stream(2))


def test_secret_stream_rarely_repeats():
    stream = make_secret_stream(5)
    keys = [next(stream) for _ in range(1000)]
    assert len(set(keys)) == 1000


def test_guess_probability_zero_attempts():
    assert guess_probability(0) == 0.0


def test_guess_probability_is_astronomically_small():
    # A million guesses against a 60-bit key: ~1e-12.
    p = guess_probability(1_000_000)
    assert p < 1e-11


def test_guess_probability_monotone():
    assert guess_probability(10) < guess_probability(1000)


def test_guess_probability_small_space_sanity():
    # 1-bit key, one guess: 50%.
    assert guess_probability(1, key_bits=1) == pytest.approx(0.5)


def test_guess_probability_rejects_negative():
    with pytest.raises(ValueError):
        guess_probability(-1)
