"""Unit tests for clock domains."""

import pytest

from repro.errors import ClockError
from repro.sim.clock import Clock
from repro.units import mhz


def test_period_of_12_5_mhz_is_80ns():
    clock = Clock("tc", mhz(12.5))
    assert clock.period == 80_000  # ps


def test_period_of_150_mhz():
    clock = Clock("cpu", mhz(150))
    assert clock.period == 6_667  # 6.667 ns rounded


def test_cycles_duration():
    clock = Clock("tc", mhz(12.5))
    assert clock.cycles(7) == 560_000


def test_fractional_cycles():
    clock = Clock("tc", mhz(10))
    assert clock.cycles(0.5) == 50_000


def test_cycles_in_duration_roundtrip():
    clock = Clock("x", mhz(100))
    assert clock.cycles_in(clock.cycles(42)) == pytest.approx(42)


def test_align_up_exact_boundary_unchanged():
    clock = Clock("x", mhz(10))  # period 100_000 ps
    assert clock.align_up(200_000) == 200_000


def test_align_up_rounds_to_next_edge():
    clock = Clock("x", mhz(10))
    assert clock.align_up(200_001) == 300_000


def test_zero_frequency_rejected():
    with pytest.raises(ClockError):
        Clock("bad", 0)


def test_negative_cycles_rejected():
    with pytest.raises(ClockError):
        Clock("x", mhz(1)).cycles(-1)


def test_negative_align_rejected():
    with pytest.raises(ClockError):
        Clock("x", mhz(1)).align_up(-1)


def test_repr_mentions_name_and_mhz():
    text = repr(Clock("tc-bus", mhz(12.5)))
    assert "tc-bus" in text and "12.5" in text
