"""Unit tests for the trace log."""

from repro.sim.trace import TraceLog


def test_disabled_log_records_nothing():
    log = TraceLog(enabled=False)
    log.emit(0, "cpu", "step", pc=1)
    assert len(log) == 0


def test_enabled_log_records_events():
    log = TraceLog(enabled=True)
    log.emit(10, "cpu", "step", pc=1)
    log.emit(20, "dma", "start", size=64)
    assert len(log) == 2
    assert log.kinds() == ["step", "start"]


def test_filter_by_source():
    log = TraceLog(enabled=True)
    log.emit(1, "cpu", "a")
    log.emit(2, "dma", "b")
    log.emit(3, "cpu", "c")
    assert [e.kind for e in log.events(source="cpu")] == ["a", "c"]


def test_filter_by_kind_and_predicate():
    log = TraceLog(enabled=True)
    log.emit(1, "dma", "start", size=64)
    log.emit(2, "dma", "start", size=128)
    big = log.events(kind="start", where=lambda e: e.detail["size"] > 100)
    assert len(big) == 1
    assert big[0].detail["size"] == 128


def test_max_events_ring_buffer():
    log = TraceLog(enabled=True, max_events=3)
    for index in range(10):
        log.emit(index, "s", f"k{index}")
    assert len(log) == 3
    assert log.kinds() == ["k7", "k8", "k9"]


def test_capped_emit_is_constant_time():
    # The cap eviction must be O(1) per emit (deque ring buffer), not a
    # front-of-list delete: emitting far past the cap should cost the
    # same per event as emitting under it.
    import timeit

    def fill(log, n):
        for index in range(n):
            log.emit(index, "s", "k")

    capped = TraceLog(enabled=True, max_events=1_000)
    uncapped = TraceLog(enabled=True)
    n = 50_000
    capped_s = timeit.timeit(lambda: fill(capped, n), number=1)
    uncapped_s = timeit.timeit(lambda: fill(uncapped, n), number=1)
    assert len(capped) == 1_000
    # Generous bound: the capped path may pay a small eviction constant
    # but must not scale with how far past the cap we are.
    assert capped_s < uncapped_s * 5 + 0.05


def test_capped_snapshot_restore_roundtrip():
    log = TraceLog(enabled=True, max_events=4)
    for index in range(6):
        log.emit(index, "s", f"k{index}")
    token = log.snapshot()
    log.emit(6, "s", "k6")
    log.emit(7, "s", "k7")
    log.restore(token)
    assert log.kinds() == ["k2", "k3", "k4", "k5"]
    # The restored log still enforces its cap.
    log.emit(8, "s", "k8")
    assert log.kinds() == ["k3", "k4", "k5", "k8"]


def test_uncapped_snapshot_restore_truncates():
    log = TraceLog(enabled=True)
    log.emit(1, "s", "a")
    token = log.snapshot()
    log.emit(2, "s", "b")
    log.emit(3, "s", "c")
    log.restore(token)
    assert log.kinds() == ["a"]


def test_clear():
    log = TraceLog(enabled=True)
    log.emit(1, "s", "k")
    log.clear()
    assert len(log) == 0


def test_format_contains_fields():
    log = TraceLog(enabled=True)
    log.emit(1_000_000, "dma", "start", size=64)
    text = log.dump()
    assert "dma/start" in text
    assert "size=64" in text


def test_iteration_yields_in_order():
    log = TraceLog(enabled=True)
    for when in (5, 10, 15):
        log.emit(when, "s", "k")
    assert [e.when for e in log] == [5, 10, 15]


def test_seq_is_monotonic_and_breaks_timestamp_ties():
    log = TraceLog(enabled=True)
    for kind in ("a", "b", "c"):
        log.emit(100, "s", kind)  # identical timestamps
    events = list(log)
    assert [e.seq for e in events] == [0, 1, 2]
    # Sorting by (when, seq) preserves emission order despite the ties.
    assert [e.kind for e in sorted(events,
                                   key=lambda e: (e.when, e.seq))] \
        == ["a", "b", "c"]


def test_seq_survives_cap_eviction():
    log = TraceLog(enabled=True, max_events=2)
    for index in range(5):
        log.emit(index, "s", f"k{index}")
    assert [e.seq for e in log] == [3, 4]


def test_seq_continues_after_clear():
    log = TraceLog(enabled=True)
    log.emit(1, "s", "a")
    log.clear()
    log.emit(2, "s", "b")
    assert list(log)[0].seq == 1


def test_seq_restored_by_snapshot():
    log = TraceLog(enabled=True)
    log.emit(1, "s", "a")
    token = log.snapshot()
    log.emit(2, "s", "b")
    log.restore(token)
    log.emit(3, "s", "c")
    assert [e.seq for e in log] == [0, 1]
