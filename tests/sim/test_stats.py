"""Unit tests for counters and latency statistics."""

import pytest

from repro.sim.stats import Counter, LatencyStat, StatRegistry, merge_snapshots
from repro.units import us


def test_counter_add_and_reset():
    counter = Counter("x")
    counter.add()
    counter.add(4)
    assert counter.value == 5
    counter.reset()
    assert counter.value == 0


def test_counter_rejects_negative():
    with pytest.raises(ValueError):
        Counter("x").add(-1)


def test_latency_mean():
    stat = LatencyStat("lat")
    for sample in (us(1), us(2), us(3)):
        stat.record(sample)
    assert stat.mean_us == pytest.approx(2.0)
    assert stat.count == 3


def test_latency_min_max():
    stat = LatencyStat("lat")
    stat.record(500)
    stat.record(100)
    stat.record(900)
    assert stat.min == 100
    assert stat.max == 900


def test_latency_stddev_zero_for_constant():
    stat = LatencyStat("lat")
    for _ in range(5):
        stat.record(1000)
    assert stat.stddev == pytest.approx(0.0, abs=1e-6)


def test_latency_stddev_known_value():
    stat = LatencyStat("lat")
    for sample in (2, 4, 4, 4, 5, 5, 7, 9):
        stat.record(sample)
    assert stat.stddev == pytest.approx(2.0)


def test_latency_rejects_negative_sample():
    with pytest.raises(ValueError):
        LatencyStat("lat").record(-1)


def test_percentile_without_samples_estimates_from_aggregates():
    # keep_samples=False must still return a defined value: the estimate
    # interpolates min..mean for p<=50 and mean..max above.
    stat = LatencyStat("lat")
    for sample in (100, 200, 600):
        stat.record(sample)
    assert stat.percentile(0) == 100
    assert stat.percentile(50) == 300  # the running mean
    assert stat.percentile(100) == 600
    assert stat.percentile(25) == 200
    assert stat.percentile(75) == 450


def test_percentile_empty_stat_is_zero():
    stat = LatencyStat("lat")
    assert stat.percentile(50) == 0
    empty_kept = LatencyStat("lat2", keep_samples=True)
    assert empty_kept.percentile(99) == 0


def test_percentile_single_aggregate_sample():
    stat = LatencyStat("lat")
    stat.record(10)
    assert stat.percentile(50) == 10
    assert not stat.has_samples


def test_percentile_bounds_checked_without_samples():
    stat = LatencyStat("lat")
    stat.record(10)
    with pytest.raises(ValueError):
        stat.percentile(-1)
    with pytest.raises(ValueError):
        stat.percentile(101)


def test_has_samples_property():
    assert not LatencyStat("a").has_samples
    kept = LatencyStat("b", keep_samples=True)
    assert not kept.has_samples
    kept.record(5)
    assert kept.has_samples


def test_percentile_median():
    stat = LatencyStat("lat", keep_samples=True)
    for sample in (10, 20, 30, 40, 50):
        stat.record(sample)
    assert stat.percentile(50) == 30
    assert stat.percentile(0) == 10
    assert stat.percentile(100) == 50


def test_percentile_interpolates():
    stat = LatencyStat("lat", keep_samples=True)
    stat.record(0)
    stat.record(100)
    assert stat.percentile(25) == 25


def test_percentile_bounds_checked():
    stat = LatencyStat("lat", keep_samples=True)
    stat.record(1)
    with pytest.raises(ValueError):
        stat.percentile(101)


def test_empty_stat_mean_is_zero():
    assert LatencyStat("lat").mean == 0.0


def test_registry_reuses_instances():
    registry = StatRegistry("dev")
    assert registry.counter("a") is registry.counter("a")
    assert registry.latency("l") is registry.latency("l")


def test_registry_reset_clears_all():
    registry = StatRegistry()
    registry.counter("a").add(3)
    registry.latency("l").record(100)
    registry.reset()
    assert registry.counter("a").value == 0
    assert registry.latency("l").count == 0


def test_registry_snapshot_qualifies_names():
    registry = StatRegistry("cpu0")
    registry.counter("instructions").add(7)
    snap = registry.snapshot()
    assert snap["cpu0.instructions"] == 7.0


def test_merge_snapshots_later_wins():
    merged = merge_snapshots([{"a": 1.0, "b": 2.0}, {"b": 3.0}])
    assert merged == {"a": 1.0, "b": 3.0}
