"""Unit tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator
from repro.sim.journal import UndoJournal


def test_initial_time_is_zero():
    assert Simulator().now == 0


def test_schedule_and_step_fires_in_order():
    sim = Simulator()
    fired = []
    sim.schedule(30, lambda: fired.append("c"))
    sim.schedule(10, lambda: fired.append("a"))
    sim.schedule(20, lambda: fired.append("b"))
    while sim.step():
        pass
    assert fired == ["a", "b", "c"]
    assert sim.now == 30


def test_same_time_events_fire_in_insertion_order():
    sim = Simulator()
    fired = []
    for label in "abcde":
        sim.schedule(5, lambda lab=label: fired.append(lab))
    sim.run()
    assert fired == list("abcde")


def test_advance_moves_clock():
    sim = Simulator()
    sim.advance(1234)
    assert sim.now == 1234


def test_advance_fires_due_events():
    sim = Simulator()
    fired = []
    sim.schedule(50, lambda: fired.append(sim.now))
    sim.advance(100)
    assert fired == [50]
    assert sim.now == 100


def test_advance_does_not_fire_future_events():
    sim = Simulator()
    fired = []
    sim.schedule(200, lambda: fired.append(True))
    sim.advance(100)
    assert fired == []
    assert sim.pending == 1


def test_negative_advance_rejected():
    with pytest.raises(SimulationError):
        Simulator().advance(-1)


def test_negative_delay_rejected():
    with pytest.raises(SimulationError):
        Simulator().schedule(-5, lambda: None)


def test_call_at_before_now_rejected():
    sim = Simulator()
    sim.advance(100)
    with pytest.raises(SimulationError):
        sim.call_at(50, lambda: None)


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    event = sim.schedule(10, lambda: fired.append(True))
    event.cancel()
    sim.run()
    assert fired == []


def test_cancel_is_idempotent():
    sim = Simulator()
    event = sim.schedule(10, lambda: None)
    event.cancel()
    event.cancel()
    assert sim.pending == 0


def test_run_until_deadline_leaves_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(10, lambda: fired.append(10))
    sim.schedule(1000, lambda: fired.append(1000))
    sim.run_until(500)
    assert fired == [10]
    assert sim.now == 500
    assert sim.pending == 1


def test_run_max_events_budget():
    sim = Simulator()
    for _ in range(10):
        sim.schedule(1, lambda: None)
    assert sim.run(max_events=3) == 3
    assert sim.pending == 7


def test_events_scheduled_during_run_fire():
    sim = Simulator()
    fired = []

    def chain():
        fired.append(sim.now)
        if len(fired) < 3:
            sim.schedule(10, chain)

    sim.schedule(10, chain)
    sim.run()
    assert fired == [10, 20, 30]


def test_wait_for_predicate_satisfied_by_event():
    sim = Simulator()
    box = {"ready": False}
    sim.schedule(100, lambda: box.update(ready=True))
    assert sim.wait_for(lambda: box["ready"])
    assert sim.now == 100


def test_wait_for_timeout_returns_false():
    sim = Simulator()
    sim.schedule(10_000, lambda: None)
    assert not sim.wait_for(lambda: False, timeout=100)
    assert sim.now == 100


def test_wait_for_immediately_true_does_not_advance():
    sim = Simulator()
    sim.schedule(10, lambda: None)
    assert sim.wait_for(lambda: True)
    assert sim.now == 0


def test_events_fired_counter():
    sim = Simulator()
    for _ in range(4):
        sim.schedule(1, lambda: None)
    sim.run()
    assert sim.events_fired == 4


def test_pending_excludes_cancelled_events():
    """`pending` is a live counter, not a scan: cancelled events drop
    out immediately and double-cancel does not double-count."""
    sim = Simulator()
    events = [sim.schedule(10 * (i + 1), lambda: None) for i in range(4)]
    assert sim.pending == 4
    events[1].cancel()
    assert sim.pending == 3
    events[3].cancel()
    events[3].cancel()
    assert sim.pending == 2
    sim.run()
    assert sim.pending == 0
    assert sim.events_fired == 2


def test_pending_counts_only_live_events_during_run():
    sim = Simulator()
    survivor = []
    victim = sim.schedule(20, lambda: survivor.append("victim"))
    sim.schedule(10, victim.cancel)
    sim.schedule(30, lambda: survivor.append("late"))
    sim.advance(15)
    assert sim.pending == 1
    sim.run()
    assert survivor == ["late"]


def test_snapshot_restore_roundtrip():
    sim = Simulator()
    fired = []
    sim.schedule(10, lambda: fired.append("a"))
    later = sim.schedule(30, lambda: fired.append("b"))
    sim.advance(15)
    token = sim.snapshot()
    later.cancel()
    sim.advance(100)
    assert (sim.now, sim.pending) == (115, 0)
    sim.restore(token)
    assert (sim.now, sim.pending, sim.events_fired) == (15, 1, 1)
    sim.run()
    assert fired == ["a", "b"]


def test_snapshot_restore_undoes_cancellation():
    """Restore revives an event cancelled after the snapshot."""
    sim = Simulator()
    fired = []
    event = sim.schedule(10, lambda: fired.append(True))
    token = sim.snapshot()
    event.cancel()
    sim.restore(token)
    assert sim.pending == 1
    sim.run()
    assert fired == [True]


# -- event wheel: far-future heap fallback and rebase ----------------------


def test_far_future_events_fire_in_order():
    """Events beyond the wheel horizon (far heap) interleave correctly
    with near events, including after the wheel rebases past them."""
    sim = Simulator()
    span = sim._span
    fired = []
    sim.call_at(span * 3 + 17, lambda: fired.append("far2"))
    sim.call_at(span + 5, lambda: fired.append("far1"))
    sim.call_at(10, lambda: fired.append("near"))
    sim.run()
    assert fired == ["near", "far1", "far2"]
    assert sim.now == span * 3 + 17


def test_same_time_insertion_order_across_horizon():
    """Same-timestamp events keep insertion order even when one starts
    in the far heap and migrates into the wheel on rebase."""
    sim = Simulator()
    when = sim._span + 123  # beyond the initial horizon
    fired = []
    sim.call_at(when, lambda: fired.append("a"))
    sim.call_at(when, lambda: fired.append("b"))
    sim.call_at(when, lambda: fired.append("c"))
    sim.advance(sim._span)  # forces a rebase; events migrate to wheel
    sim.run()
    assert fired == ["a", "b", "c"]


def test_cancel_far_event_then_run():
    sim = Simulator()
    fired = []
    far = sim.call_at(sim._span * 2, lambda: fired.append("far"))
    sim.call_at(5, lambda: fired.append("near"))
    far.cancel()
    sim.run()
    assert fired == ["near"]
    assert sim.pending == 0


def test_live_event_signature_tracks_wheel_and_far():
    sim = Simulator()
    sim.schedule(10, lambda: None, label="near")
    far = sim.call_at(sim._span + 1, lambda: None, label="far")
    assert sim.live_event_signature() == ((10, "near"),
                                          (sim._span + 1, "far"))
    far.cancel()
    assert sim.live_event_signature() == ((10, "near"),)


# -- transient event recycling ---------------------------------------------


def test_transient_events_are_recycled():
    sim = Simulator()
    sim.schedule(10, lambda: None, transient=True)
    sim.run()
    assert len(sim._free) == 1
    recycled = sim._free[-1]
    event = sim.schedule(20, lambda: None)
    assert event is recycled  # the pool object was reused
    assert not event.cancelled
    sim.run()


def test_recycling_disabled_after_legacy_snapshot():
    """A legacy snapshot may hold references to fired events, so the
    free-list must stop collecting them once one has been taken."""
    sim = Simulator()
    sim.snapshot()
    sim.schedule(10, lambda: None, transient=True)
    sim.run()
    assert sim._free == []


def test_recycling_disabled_under_journal():
    """Journal undo entries reference fired events; recycling them
    would corrupt a later undo_to."""
    sim = Simulator()
    sim.bind_journal(UndoJournal())
    sim.schedule(10, lambda: None, transient=True)
    sim.run()
    assert sim._free == []


# -- journal mark/undo -----------------------------------------------------


def test_journal_mark_undo_roundtrip():
    sim = Simulator()
    journal = UndoJournal()
    sim.bind_journal(journal)
    fired = []
    sim.schedule(10, lambda: fired.append("a"))
    sim.advance(5)
    mark = journal.mark()
    sim.schedule(30, lambda: fired.append("b"))
    sim.run()
    assert fired == ["a", "b"]
    journal.undo_to(mark)
    assert (sim.now, sim.pending, sim.events_fired) == (5, 1, 0)
    fired.clear()
    sim.run()
    assert fired == ["a"]


def test_journal_undo_revives_cancelled_event():
    sim = Simulator()
    journal = UndoJournal()
    sim.bind_journal(journal)
    fired = []
    event = sim.schedule(10, lambda: fired.append(True))
    mark = journal.mark()
    event.cancel()
    assert sim.pending == 0
    journal.undo_to(mark)
    assert sim.pending == 1
    assert sim.live_event_signature() == ((10, ""),)
    sim.run()
    assert fired == [True]


def test_journal_nested_marks_undo_in_stack_order():
    sim = Simulator()
    journal = UndoJournal()
    sim.bind_journal(journal)
    sim.advance(1)
    outer = journal.mark()
    sim.advance(10)
    inner = journal.mark()
    sim.schedule(100, lambda: None)
    sim.advance(5)
    journal.undo_to(inner)
    assert (sim.now, sim.pending) == (11, 0)
    journal.undo_to(outer)
    assert (sim.now, sim.pending) == (1, 0)
