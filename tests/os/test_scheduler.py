"""Unit tests for the preemptive scheduler and its hooks."""

import pytest

from repro.core.machine import MachineConfig, Workstation
from repro.errors import SchedulerError
from repro.hw.isa import Add, Halt, Label, Mov, Bne, assemble
from repro.os.scheduler import (
    RandomPreemptionPolicy,
    RoundRobinPolicy,
    ScriptedPolicy,
)
from repro.sim.rng import make_rng


def counting_program(n, reg="t0"):
    return assemble([
        Mov(reg, 0),
        Label("loop"),
        Add(reg, reg, 1),
        Bne(reg, n, "loop"),
        Halt(),
    ])


def make_two_threads(method="repeated5", quantum=None, policy=None):
    ws = Workstation(MachineConfig(method=method))
    procs, threads = [], []
    for name in ("a", "b"):
        proc = ws.kernel.spawn(name)
        ws.kernel.enable_user_dma(proc)
        thread = proc.new_thread(counting_program(10))
        procs.append(proc)
        threads.append(thread)
    chosen = policy or RoundRobinPolicy(quantum or 5)
    scheduler = ws.make_scheduler(chosen)
    for proc, thread in zip(procs, threads):
        scheduler.add(proc, thread)
    return ws, scheduler, procs, threads


def test_round_robin_completes_all():
    ws, scheduler, _, threads = make_two_threads()
    switches, completed = scheduler.run()
    assert all(t.halted for t in threads)
    assert len(completed) == 2
    assert switches >= 1


def test_quantum_interleaves_threads():
    ws, scheduler, _, threads = make_two_threads(quantum=3)
    switches, _ = scheduler.run()
    # Both make progress before either finishes: many switches.
    assert switches > 2


def test_random_policy_is_seeded_deterministic():
    results = []
    for _ in range(2):
        ws, scheduler, _, threads = make_two_threads(
            policy=RandomPreemptionPolicy(0.4, make_rng(5, "sched")))
        switches, completed = scheduler.run()
        results.append((switches, [t.pid for t in completed]))
    assert results[0] == results[1]


def test_context_switch_costs_time():
    ws, scheduler, _, _ = make_two_threads(quantum=2)
    before = ws.now
    switches, _ = scheduler.run()
    assert ws.now > before
    assert scheduler.stats.counter("context_switches").value == switches


def test_hooks_fire_on_every_switch():
    ws, scheduler, _, _ = make_two_threads()
    seen = []
    scheduler.install_hook(lambda old, new: seen.append(
        (old.pid if old else None, new.pid)))
    switches, _ = scheduler.run()
    assert len(seen) == switches
    assert seen[0][0] is None  # first dispatch has no old process


def test_pid_mismatch_rejected():
    ws, scheduler, procs, _ = make_two_threads()
    rogue = procs[0].new_thread(counting_program(1))
    rogue.pid = 999
    with pytest.raises(SchedulerError):
        scheduler.add(procs[0], rogue)


def test_budget_exhaustion_raises():
    ws, scheduler, _, _ = make_two_threads()
    with pytest.raises(SchedulerError):
        scheduler.run(max_instructions=5)


def test_scripted_policy_replays_exact_order():
    ws = Workstation(MachineConfig(method="repeated5"))
    order = []

    class Probe(RoundRobinPolicy):
        pass

    procs, threads = [], []
    for name in ("x", "y"):
        proc = ws.kernel.spawn(name)
        ws.kernel.enable_user_dma(proc)
        thread = proc.new_thread(counting_program(2))
        procs.append(proc)
        threads.append(thread)
    script = [0, 0, 1, 0, 1, 1]
    policy = ScriptedPolicy(script + [0] * 50)
    scheduler = ws.make_scheduler(policy)
    for proc, thread in zip(procs, threads):
        scheduler.add(proc, thread)
    scheduler.run()
    assert all(t.halted for t in threads)


def test_flash_hook_updates_engine_pid():
    ws = Workstation(MachineConfig(method="flash"))
    procs, threads = [], []
    for name in ("a", "b"):
        proc = ws.kernel.spawn(name)
        ws.kernel.enable_user_dma(proc)
        threads.append(proc.new_thread(counting_program(5)))
        procs.append(proc)
    scheduler = ws.make_scheduler(RoundRobinPolicy(3))
    for proc, thread in zip(procs, threads):
        scheduler.add(proc, thread)
    scheduler.run()
    # The engine's current-pid register tracked the switches.
    assert ws.engine.current_pid in (procs[0].pid, procs[1].pid)


def test_no_hooks_when_disabled():
    ws = Workstation(MachineConfig(method="flash"))
    scheduler = ws.make_scheduler(RoundRobinPolicy(3),
                                  with_required_hooks=False)
    assert scheduler.hooks == []


def test_required_hook_installed_for_shrimp2():
    ws = Workstation(MachineConfig(method="shrimp2"))
    scheduler = ws.make_scheduler(RoundRobinPolicy(3))
    assert len(scheduler.hooks) == 1


def test_no_hook_needed_for_paper_methods():
    for method in ("keyed", "extshadow", "repeated5", "pal"):
        ws = Workstation(MachineConfig(method=method))
        scheduler = ws.make_scheduler(RoundRobinPolicy(3))
        assert scheduler.hooks == []


def test_policy_validation():
    with pytest.raises(SchedulerError):
        RoundRobinPolicy(0)
    with pytest.raises(SchedulerError):
        RandomPreemptionPolicy(1.5, make_rng(1))
