"""Unit tests for the kernel: setup services and the Fig. 1 syscall."""

import pytest

from repro.core.machine import MachineConfig, Workstation
from repro.errors import KernelError
from repro.hw.dma.status import STATUS_FAILURE, is_rejection
from repro.hw.isa import Halt, Mov, Syscall, assemble
from repro.hw.pagetable import PAGE_SIZE, Perm
from repro.os.process import CTX_PAGE_VADDR, shadow_vaddr
from repro.units import to_us


def ws_with(method="keyed", **kw):
    return Workstation(MachineConfig(method=method, **kw))


class TestSpawnAndBuffers:
    def test_spawn_assigns_unique_pids(self):
        ws = ws_with()
        a = ws.kernel.spawn()
        b = ws.kernel.spawn()
        assert a.pid != b.pid
        assert ws.kernel.processes[a.pid] is a

    def test_alloc_buffer_auto_shadows_with_binding(self):
        ws = ws_with("keyed")
        proc = ws.kernel.spawn()
        ws.kernel.enable_user_dma(proc)
        buffer = ws.kernel.alloc_buffer(proc, PAGE_SIZE)
        assert buffer.shadowed
        shadow_pte = proc.page_table.lookup(shadow_vaddr(buffer.vaddr))
        assert shadow_pte is not None
        decoded = ws.engine.layout.decode_paddr(shadow_pte.pframe)
        assert decoded.paddr == ws.engine.global_address(buffer.paddr)

    def test_alloc_buffer_no_shadow_for_kernel_method(self):
        ws = ws_with("kernel")
        proc = ws.kernel.spawn()
        buffer = ws.kernel.alloc_buffer(proc, PAGE_SIZE)
        assert not buffer.shadowed

    def test_shadow_forced_off(self):
        ws = ws_with("keyed")
        proc = ws.kernel.spawn()
        ws.kernel.enable_user_dma(proc)
        buffer = ws.kernel.alloc_buffer(proc, PAGE_SIZE, shadow=False)
        assert not buffer.shadowed


class TestEnableUserDma:
    def test_keyed_grants_context_key_and_page(self):
        ws = ws_with("keyed")
        proc = ws.kernel.spawn()
        binding = ws.kernel.enable_user_dma(proc)
        assert binding.method == "keyed"
        assert binding.ctx_id == 0
        assert binding.key is not None and binding.key != 0
        assert ws.engine.key_table[0] == binding.key
        assert binding.ctx_page_vaddr == CTX_PAGE_VADDR
        assert proc.page_table.translate(CTX_PAGE_VADDR, "write") == (
            ws.engine.layout.context_page_paddr(0))

    def test_extshadow_embeds_ctx_bits(self):
        ws = ws_with("extshadow")
        first = ws.kernel.spawn()
        second = ws.kernel.spawn()
        b1 = ws.kernel.enable_user_dma(first)
        b2 = ws.kernel.enable_user_dma(second)
        assert (b1.shadow_ctx_bits, b2.shadow_ctx_bits) == (0, 1)
        buf = ws.kernel.alloc_buffer(second, PAGE_SIZE)
        pte = second.page_table.lookup(shadow_vaddr(buf.vaddr))
        decoded = ws.engine.layout.decode_paddr(pte.pframe)
        assert decoded.ctx_id == 1

    def test_plain_methods_need_no_context(self):
        ws = ws_with("repeated5")
        proc = ws.kernel.spawn()
        binding = ws.kernel.enable_user_dma(proc)
        assert binding.ctx_id is None
        assert binding.key is None

    def test_context_exhaustion(self):
        ws = ws_with("keyed", n_contexts=2)
        for _ in range(2):
            ws.kernel.enable_user_dma(ws.kernel.spawn())
        with pytest.raises(KernelError):
            ws.kernel.enable_user_dma(ws.kernel.spawn())

    def test_release_recycles_context(self):
        ws = ws_with("keyed", n_contexts=1)
        proc = ws.kernel.spawn()
        ws.kernel.enable_user_dma(proc)
        ws.kernel.release_user_dma(proc)
        assert ws.engine.key_table == {}
        other = ws.kernel.spawn()
        assert ws.kernel.enable_user_dma(other).ctx_id == 0

    def test_double_enable_rejected(self):
        ws = ws_with("keyed")
        proc = ws.kernel.spawn()
        ws.kernel.enable_user_dma(proc)
        with pytest.raises(KernelError):
            ws.kernel.enable_user_dma(proc)

    def test_kernel_only_machine_rejects(self):
        ws = ws_with("kernel")
        with pytest.raises(KernelError):
            ws.kernel.enable_user_dma(ws.kernel.spawn())

    def test_distinct_processes_get_distinct_keys(self):
        ws = ws_with("keyed")
        keys = set()
        for _ in range(3):
            proc = ws.kernel.spawn()
            keys.add(ws.kernel.enable_user_dma(proc).key)
        assert len(keys) == 3


class TestShareBuffer:
    def test_peer_sees_same_frames(self):
        ws = ws_with("repeated5")
        owner = ws.kernel.spawn("owner")
        peer = ws.kernel.spawn("peer")
        ws.kernel.enable_user_dma(owner)
        ws.kernel.enable_user_dma(peer)
        buffer = ws.kernel.alloc_buffer(owner, PAGE_SIZE)
        ws.ram.write(buffer.paddr, b"shared")
        peer_vaddr = ws.kernel.share_buffer(owner, buffer, peer)
        paddr = peer.page_table.translate(peer_vaddr, "read")
        assert ws.ram.read(paddr, 6) == b"shared"

    def test_read_only_share(self):
        from repro.errors import ProtectionFault

        ws = ws_with("repeated5")
        owner = ws.kernel.spawn()
        peer = ws.kernel.spawn()
        ws.kernel.enable_user_dma(owner)
        ws.kernel.enable_user_dma(peer)
        buffer = ws.kernel.alloc_buffer(owner, PAGE_SIZE)
        vaddr = ws.kernel.share_buffer(owner, buffer, peer,
                                       perm=Perm.READ)
        with pytest.raises(ProtectionFault):
            peer.page_table.translate(vaddr, "write")

    def test_share_unowned_rejected(self):
        ws = ws_with("repeated5")
        owner = ws.kernel.spawn()
        other = ws.kernel.spawn()
        ws.kernel.enable_user_dma(owner)
        buffer = ws.kernel.alloc_buffer(owner, PAGE_SIZE)
        with pytest.raises(KernelError):
            ws.kernel.share_buffer(other, buffer, owner)


class TestSysDma:
    def run_syscall(self, ws, proc, vsrc, vdst, size):
        program = assemble([
            Mov("a0", vsrc), Mov("a1", vdst), Mov("a2", size),
            Syscall("dma"), Halt()])
        thread = ws.run_program(proc, program)
        return thread.reg("v0")

    def test_fig1_path_moves_data(self):
        ws = ws_with("kernel")
        proc = ws.kernel.spawn()
        src = ws.kernel.alloc_buffer(proc, PAGE_SIZE)
        dst = ws.kernel.alloc_buffer(proc, PAGE_SIZE)
        ws.ram.write(src.paddr, b"fig1!")
        status = self.run_syscall(ws, proc, src.vaddr, dst.vaddr, 5)
        assert not is_rejection(status)
        ws.drain()
        assert ws.ram.read(dst.paddr, 5) == b"fig1!"

    def test_costs_about_18_6_us(self):
        ws = ws_with("kernel")
        proc = ws.kernel.spawn()
        src = ws.kernel.alloc_buffer(proc, PAGE_SIZE)
        dst = ws.kernel.alloc_buffer(proc, PAGE_SIZE)
        before = ws.now
        self.run_syscall(ws, proc, src.vaddr, dst.vaddr, 64)
        elapsed_us = to_us(ws.now - before)
        assert 16.0 < elapsed_us < 21.0  # Table 1: 18.6 us

    def test_unmapped_address_returns_failure(self):
        ws = ws_with("kernel")
        proc = ws.kernel.spawn()
        dst = ws.kernel.alloc_buffer(proc, PAGE_SIZE)
        status = self.run_syscall(ws, proc, 0xDEAD0000, dst.vaddr, 8)
        assert status == STATUS_FAILURE
        assert ws.engine.started_transfers() == []

    def test_read_only_destination_rejected(self):
        ws = ws_with("kernel")
        proc = ws.kernel.spawn()
        src = ws.kernel.alloc_buffer(proc, PAGE_SIZE)
        dst = ws.kernel.alloc_buffer(proc, PAGE_SIZE, perm=Perm.READ)
        status = self.run_syscall(ws, proc, src.vaddr, dst.vaddr, 8)
        assert status == STATUS_FAILURE

    def test_zero_size_rejected(self):
        ws = ws_with("kernel")
        proc = ws.kernel.spawn()
        src = ws.kernel.alloc_buffer(proc, PAGE_SIZE)
        dst = ws.kernel.alloc_buffer(proc, PAGE_SIZE)
        assert self.run_syscall(ws, proc, src.vaddr, dst.vaddr, 0) == (
            STATUS_FAILURE)

    def test_range_check_covers_whole_transfer(self):
        """A transfer overrunning the buffer must fail check_size()."""
        ws = ws_with("kernel")
        proc = ws.kernel.spawn()
        src = ws.kernel.alloc_buffer(proc, PAGE_SIZE)
        dst = ws.kernel.alloc_buffer(proc, PAGE_SIZE)
        status = self.run_syscall(ws, proc, src.vaddr, dst.vaddr,
                                  PAGE_SIZE + 8)
        # src+size crosses into dst's pages (mapped) but dst+size runs
        # past the last mapped page -> fault -> failure.
        assert status == STATUS_FAILURE


class TestMapOut:
    def test_mapout_installs_per_page_entries(self):
        ws = ws_with("shrimp1")
        proc = ws.kernel.spawn()
        ws.kernel.enable_user_dma(proc)
        src = ws.kernel.alloc_buffer(proc, 2 * PAGE_SIZE)
        dst = ws.kernel.alloc_buffer(proc, 2 * PAGE_SIZE)
        ws.kernel.map_out(proc, src.vaddr, proc, dst.vaddr,
                          2 * PAGE_SIZE)
        g = ws.engine.global_address
        assert ws.engine.mapout_destination(g(src.paddr) + 5) == (
            g(dst.paddr) + 5)
        assert ws.engine.mapout_destination(
            g(src.paddr) + PAGE_SIZE) == g(dst.paddr) + PAGE_SIZE

    def test_mapout_requires_rights(self):
        from repro.errors import ProtectionFault

        ws = ws_with("shrimp1")
        proc = ws.kernel.spawn()
        ws.kernel.enable_user_dma(proc)
        src = ws.kernel.alloc_buffer(proc, PAGE_SIZE)
        dst = ws.kernel.alloc_buffer(proc, PAGE_SIZE, perm=Perm.READ)
        with pytest.raises(ProtectionFault):
            ws.kernel.map_out(proc, src.vaddr, proc, dst.vaddr)


class TestRemoteWindow:
    def test_window_has_shadow_but_no_data_mapping(self):
        from repro.errors import PageFault

        ws = ws_with("extshadow")
        proc = ws.kernel.spawn()
        ws.kernel.enable_user_dma(proc)
        window = ws.kernel.map_remote_window(proc, 0x10 << 28, PAGE_SIZE)
        with pytest.raises(PageFault):
            proc.page_table.translate(window, "read")
        shadow_pte = proc.page_table.lookup(shadow_vaddr(window))
        assert shadow_pte is not None

    def test_window_without_binding_has_no_shadow_mapping(self):
        """Kernel-method processes get a grant but no shadow pages."""
        ws = ws_with("extshadow")
        proc = ws.kernel.spawn()
        window = ws.kernel.map_remote_window(proc, 0x10 << 28, PAGE_SIZE)
        assert proc.remote_window_at(window) == 0x10 << 28
        assert proc.page_table.lookup(shadow_vaddr(window)) is None

    def test_remote_window_resolution_bounds(self):
        ws = ws_with("extshadow")
        proc = ws.kernel.spawn()
        ws.kernel.enable_user_dma(proc)
        window = ws.kernel.map_remote_window(proc, 0x10 << 28, PAGE_SIZE)
        assert proc.remote_window_at(window + 8) == (0x10 << 28) + 8
        assert proc.remote_window_at(window + PAGE_SIZE) is None

    def test_window_alignment_enforced(self):
        ws = ws_with("extshadow")
        proc = ws.kernel.spawn()
        ws.kernel.enable_user_dma(proc)
        with pytest.raises(KernelError):
            ws.kernel.map_remote_window(proc, 0x10 << 28, 100)


class TestRemoteWindowBounds:
    def test_kernel_dma_rejects_overrun_of_remote_window(self):
        from repro.hw.dma.status import STATUS_FAILURE
        from repro.hw.isa import Halt, Mov, Syscall, assemble

        ws = ws_with("kernel")
        proc = ws.kernel.spawn()
        src = ws.kernel.alloc_buffer(proc, 2 * PAGE_SIZE)
        window = ws.kernel.map_remote_window(proc, 0x10 << 28, PAGE_SIZE)
        program = assemble([
            Mov("a0", src.vaddr), Mov("a1", window + PAGE_SIZE - 64),
            Mov("a2", 128),  # runs 64 bytes past the window
            Syscall("dma"), Halt()])
        thread = ws.run_program(proc, program)
        assert thread.reg("v0") == STATUS_FAILURE
        assert ws.engine.started_transfers() == []

    def test_kernel_dma_within_window_accepted(self):
        from repro.hw.dma.status import is_rejection
        from repro.hw.isa import Halt, Mov, Syscall, assemble

        ws = ws_with("kernel")
        proc = ws.kernel.spawn()
        src = ws.kernel.alloc_buffer(proc, PAGE_SIZE)
        window = ws.kernel.map_remote_window(proc, 0x10 << 28, PAGE_SIZE)
        program = assemble([
            Mov("a0", src.vaddr), Mov("a1", window), Mov("a2", 64),
            Syscall("dma"), Halt()])
        thread = ws.run_program(proc, program)
        # Node 0x10 does not exist on a standalone machine, so the
        # engine rejects it — but the KERNEL's window check passed (a
        # cluster test covers acceptance end-to-end).
        assert ws.engine.initiations  # reached the engine
