"""Unit tests for processes and the virtual-memory manager."""

import pytest

from repro.errors import KernelError, PageFault, ProtectionFault
from repro.hw.isa import Halt, assemble
from repro.hw.memory import FrameAllocator
from repro.hw.pagetable import PAGE_SIZE, Perm
from repro.os.process import (
    ATOMIC_OP_STRIDE,
    ATOMIC_VOFFSET,
    Process,
    SHADOW_VOFFSET,
    USER_BASE,
    atomic_shadow_vaddr,
    shadow_vaddr,
)
from repro.os.vm import VirtualMemoryManager


def make_vmm(pages=32):
    return VirtualMemoryManager(FrameAllocator(0, pages * PAGE_SIZE))


class TestProcess:
    def test_vranges_do_not_overlap(self):
        proc = Process(1)
        a = proc.take_vrange(2 * PAGE_SIZE)
        b = proc.take_vrange(PAGE_SIZE)
        assert a == USER_BASE
        assert b == a + 2 * PAGE_SIZE

    def test_vrange_rejects_partial_pages(self):
        with pytest.raises(KernelError):
            Process(1).take_vrange(100)

    def test_new_thread_bound_to_process(self):
        proc = Process(7, "w")
        thread = proc.new_thread(assemble([Halt()]))
        assert thread.pid == 7
        assert thread.page_table is proc.page_table
        assert proc.threads == [thread]

    def test_bindings_raise_until_granted(self):
        proc = Process(1)
        with pytest.raises(KernelError):
            _ = proc.dma_binding
        with pytest.raises(KernelError):
            _ = proc.atomic_binding

    def test_buffer_lookup(self):
        vmm = make_vmm()
        proc = Process(1)
        buffer = vmm.alloc_buffer(proc, PAGE_SIZE)
        assert proc.buffer_at(buffer.vaddr) is buffer
        assert proc.buffer_at(buffer.vaddr + buffer.size - 1) is buffer
        assert proc.buffer_at(buffer.vaddr + buffer.size) is None


class TestShadowVaddrs:
    def test_shadow_offset_constant(self):
        assert shadow_vaddr(0x10000) == 0x10000 + SHADOW_VOFFSET

    def test_atomic_shadow_by_op(self):
        base = atomic_shadow_vaddr(0, 0x10000)
        assert base == 0x10000 + ATOMIC_VOFFSET
        assert (atomic_shadow_vaddr(2, 0x10000) - base
                == 2 * ATOMIC_OP_STRIDE)

    def test_regions_do_not_collide(self):
        data = USER_BASE
        assert shadow_vaddr(data) != atomic_shadow_vaddr(0, data)
        spans = sorted([data, shadow_vaddr(data),
                        atomic_shadow_vaddr(0, data),
                        atomic_shadow_vaddr(3, data)])
        assert len(set(spans)) == 4


class TestVmm:
    def test_alloc_buffer_maps_and_records(self):
        vmm = make_vmm()
        proc = Process(1)
        buffer = vmm.alloc_buffer(proc, 3 * PAGE_SIZE)
        assert buffer.size == 3 * PAGE_SIZE
        paddr = proc.page_table.translate(buffer.vaddr, "write")
        assert paddr == buffer.paddr
        assert proc.buffers == [buffer]

    def test_alloc_rounds_up_to_pages(self):
        vmm = make_vmm()
        buffer = vmm.alloc_buffer(Process(1), 100)
        assert buffer.size == PAGE_SIZE

    def test_alloc_is_physically_contiguous(self):
        vmm = make_vmm()
        proc = Process(1)
        buffer = vmm.alloc_buffer(proc, 4 * PAGE_SIZE)
        for offset in range(0, buffer.size, PAGE_SIZE):
            assert proc.page_table.translate(
                buffer.vaddr + offset, "read") == buffer.paddr + offset

    def test_alloc_rejects_nonpositive(self):
        with pytest.raises(KernelError):
            make_vmm().alloc_buffer(Process(1), 0)

    def test_map_shadow_mirrors_permissions(self):
        vmm = make_vmm()
        proc = Process(1)
        buffer = vmm.alloc_buffer(proc, PAGE_SIZE, Perm.READ)
        vmm.map_shadow(proc, buffer, lambda p: (1 << 40) + p)
        shadow = shadow_vaddr(buffer.vaddr)
        assert proc.page_table.translate(shadow, "read") == (
            (1 << 40) + buffer.paddr)
        with pytest.raises(ProtectionFault):
            proc.page_table.translate(shadow, "write")

    def test_shadow_pages_are_uncached(self):
        vmm = make_vmm()
        proc = Process(1)
        buffer = vmm.alloc_buffer(proc, PAGE_SIZE)
        vmm.map_shadow(proc, buffer, lambda p: (1 << 40) + p)
        pte = proc.page_table.lookup(shadow_vaddr(buffer.vaddr))
        assert pte.uncached

    def test_double_shadow_rejected(self):
        vmm = make_vmm()
        proc = Process(1)
        buffer = vmm.alloc_buffer(proc, PAGE_SIZE)
        vmm.map_shadow(proc, buffer, lambda p: (1 << 40) + p)
        with pytest.raises(KernelError):
            vmm.map_shadow(proc, buffer, lambda p: (1 << 40) + p)

    def test_map_device_page(self):
        vmm = make_vmm()
        proc = Process(1)
        vmm.map_device_page(proc, 0x80000, (1 << 40))
        assert proc.page_table.translate(0x80000, "write") == 1 << 40

    def test_unmapped_data_faults(self):
        proc = Process(1)
        with pytest.raises(PageFault):
            proc.page_table.translate(USER_BASE, "read")
