"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import pytest

from repro.core.api import DmaChannel
from repro.core.machine import MachineConfig, Workstation
from repro.hw.dma.protocols.capio import pack_cap_word
from repro.hw.dma.protocols.keyed import ARG_DESTINATION, ARG_SOURCE
from repro.hw.dma.recognizer import SetupOp

#: Shared secrets for two-process modern-method harness tests.
MODERN_NONCE_1, MODERN_NONCE_2 = 0x1111, 0x2222


def modern_stream_kwargs(method: str):
    """(kwargs_1, kwargs_2) for initiation_stream on the modern methods.

    Process 1 runs on context 0, process 2 on context 1; for capio the
    psrc/pdst positional arguments double as capability-buffer offsets
    against base-0 capabilities (caps 1 and 2, see
    :func:`install_modern_setup`).
    """
    if method in ("iommu", "iommu_noshootdown"):
        return {"ctx_id": 0}, {"ctx_id": 1}
    if method in ("capio", "capio_noepoch"):
        return (
            {"ctx_id": 0,
             "src_token": pack_cap_word(1, 0, MODERN_NONCE_1, ARG_SOURCE),
             "dst_token": pack_cap_word(1, 0, MODERN_NONCE_1,
                                        ARG_DESTINATION)},
            {"ctx_id": 1,
             "src_token": pack_cap_word(2, 0, MODERN_NONCE_2, ARG_SOURCE),
             "dst_token": pack_cap_word(2, 0, MODERN_NONCE_2,
                                        ARG_DESTINATION)},
        )
    return {}, {}


def install_modern_setup(harness, method: str) -> None:
    """Kernel-side setup matching :func:`modern_stream_kwargs`."""
    if method in ("iommu", "iommu_noshootdown"):
        # Identity-map each process's pages so the stream IOVAs resolve.
        harness.install_setup(SetupOp("iommu-map", (0, 0, 0, True)))
        harness.install_setup(SetupOp("iommu-map", (1, 8192, 8192, True)))
    elif method in ("capio", "capio_noepoch"):
        harness.install_setup(SetupOp(
            "cap-mint", (1, 0, 1, 0, 16384, True, True, MODERN_NONCE_1)))
        harness.install_setup(SetupOp(
            "cap-mint", (2, 1, 2, 0, 32768, True, True, MODERN_NONCE_2)))


def build_workstation(method: str = "keyed", **overrides) -> Workstation:
    """A fresh workstation wired for *method*."""
    return Workstation(MachineConfig(method=method, **overrides))


def ready_channel(method: str = "keyed", buf_bytes: int = 16384,
                  **overrides):
    """(workstation, process, src buffer, dst buffer, channel) for *method*.

    Buffers are allocated with shadow mappings where the method uses
    them; SHRIMP-1 additionally gets its mapped-out entries installed.
    """
    ws = build_workstation(method, **overrides)
    proc = ws.kernel.spawn("app")
    if method != "kernel":
        ws.kernel.enable_user_dma(proc)
    shadow = method != "kernel"
    src = ws.kernel.alloc_buffer(proc, buf_bytes, shadow=shadow)
    dst = ws.kernel.alloc_buffer(proc, buf_bytes, shadow=shadow)
    if method == "shrimp1":
        ws.kernel.map_out(proc, src.vaddr, proc, dst.vaddr, buf_bytes)
    channel = DmaChannel(ws, proc)
    return ws, proc, src, dst, channel


@pytest.fixture
def keyed_setup():
    """Default key-based machine, ready to DMA."""
    return ready_channel("keyed")


@pytest.fixture
def extshadow_setup():
    """Extended-shadow machine, ready to DMA."""
    return ready_channel("extshadow")


@pytest.fixture
def kernel_setup():
    """Kernel-only machine, ready for the Fig. 1 syscall path."""
    return ready_channel("kernel")
