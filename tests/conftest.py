"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import pytest

from repro.core.api import DmaChannel
from repro.core.machine import MachineConfig, Workstation


def build_workstation(method: str = "keyed", **overrides) -> Workstation:
    """A fresh workstation wired for *method*."""
    return Workstation(MachineConfig(method=method, **overrides))


def ready_channel(method: str = "keyed", buf_bytes: int = 16384,
                  **overrides):
    """(workstation, process, src buffer, dst buffer, channel) for *method*.

    Buffers are allocated with shadow mappings where the method uses
    them; SHRIMP-1 additionally gets its mapped-out entries installed.
    """
    ws = build_workstation(method, **overrides)
    proc = ws.kernel.spawn("app")
    if method != "kernel":
        ws.kernel.enable_user_dma(proc)
    shadow = method != "kernel"
    src = ws.kernel.alloc_buffer(proc, buf_bytes, shadow=shadow)
    dst = ws.kernel.alloc_buffer(proc, buf_bytes, shadow=shadow)
    if method == "shrimp1":
        ws.kernel.map_out(proc, src.vaddr, proc, dst.vaddr, buf_bytes)
    channel = DmaChannel(ws, proc)
    return ws, proc, src, dst, channel


@pytest.fixture
def keyed_setup():
    """Default key-based machine, ready to DMA."""
    return ready_channel("keyed")


@pytest.fixture
def extshadow_setup():
    """Extended-shadow machine, ready to DMA."""
    return ready_channel("extshadow")


@pytest.fixture
def kernel_setup():
    """Kernel-only machine, ready for the Fig. 1 syscall path."""
    return ready_channel("kernel")
