"""Unit tests for the Chrome-trace / JSONL / summary-table exporters."""

import json

import pytest

from repro.errors import ObservabilityError
from repro.obs.export import (
    children_of,
    chrome_trace,
    ensure_valid_chrome_trace,
    span_summary_table,
    span_tree_roots,
    spans_jsonl,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.metrics import MetricsSampler
from repro.obs.spans import SpanTracer
from repro.sim.trace import TraceLog


class FakeClock:
    def __init__(self):
        self.now = 0

    def __call__(self):
        return self.now


def make_spans():
    clock = FakeClock()
    tracer = SpanTracer(clock=clock, enabled=True)
    root = tracer.begin("dma", track="proc1", method="repeated5")
    child = tracer.begin("dma.initiate", track="proc1")
    clock.now = 1_000_000
    tracer.end(child, outcome="completed")
    clock.now = 2_000_000
    tracer.end(root, outcome="completed")
    open_span = tracer.begin("dma.transfer", track="engine", stack=False)
    return tracer.all_spans(), root, child, open_span


def test_chrome_trace_validates_and_has_metadata():
    spans, _, _, _ = make_spans()
    trace = chrome_trace(spans, process_name="unit")
    assert validate_chrome_trace(trace) == []
    phases = [e["ph"] for e in trace["traceEvents"]]
    assert "M" in phases and "X" in phases
    names = {e["args"]["name"] for e in trace["traceEvents"]
             if e["ph"] == "M" and e["name"] == "thread_name"}
    assert names == {"proc1", "engine"}


def test_chrome_trace_span_fields():
    spans, root, child, open_span = make_spans()
    trace = chrome_trace(spans)
    complete = {e["args"]["span_id"]: e for e in trace["traceEvents"]
                if e["ph"] == "X"}
    assert complete[root.span_id]["dur"] == 2.0        # us
    assert complete[child.span_id]["args"]["parent_id"] == root.span_id
    assert complete[open_span.span_id]["args"]["open"] is True
    assert complete[open_span.span_id]["dur"] == 0


def test_chrome_trace_includes_events_and_counters():
    spans, _, _, _ = make_spans()
    log = TraceLog(enabled=True)
    log.emit(500_000, "nic", "send", size=64)
    clock = FakeClock()
    sampler = MetricsSampler(clock, sources=[lambda: {"bytes": 7.0}],
                             interval=1)
    sampler.poll()
    trace = chrome_trace(spans, events=log.events(), metrics=sampler)
    assert validate_chrome_trace(trace) == []
    instants = [e for e in trace["traceEvents"] if e["ph"] == "i"]
    counters = [e for e in trace["traceEvents"] if e["ph"] == "C"]
    assert instants[0]["name"] == "nic/send"
    assert instants[0]["args"]["seq"] == 0
    assert counters[0]["name"] == "bytes"
    assert counters[0]["args"]["value"] == 7.0


def test_validate_rejects_malformed():
    assert validate_chrome_trace([]) != []
    assert validate_chrome_trace({"traceEvents": "nope"}) != []
    bad_phase = {"traceEvents": [{"ph": "Z", "name": "x", "pid": 1}]}
    assert any("unknown phase" in p
               for p in validate_chrome_trace(bad_phase))
    bad_ts = {"traceEvents": [
        {"ph": "X", "name": "x", "pid": 1, "tid": 1, "ts": -1, "dur": 0}]}
    assert any("ts" in p for p in validate_chrome_trace(bad_ts))
    with pytest.raises(ObservabilityError):
        ensure_valid_chrome_trace(bad_phase)


def test_write_chrome_trace_roundtrips(tmp_path):
    spans, _, _, _ = make_spans()
    path = tmp_path / "trace.json"
    trace = write_chrome_trace(path, spans)
    loaded = json.loads(path.read_text())
    assert loaded == trace
    assert validate_chrome_trace(loaded) == []


def test_spans_jsonl_one_line_per_span():
    spans, root, _, _ = make_spans()
    text = spans_jsonl(spans)
    lines = [json.loads(line) for line in text.splitlines()]
    assert len(lines) == len(spans)
    assert lines[0]["id"] == root.span_id
    assert lines[0]["attrs"]["outcome"] == "completed"
    assert spans_jsonl([]) == ""


def test_span_tree_navigation():
    spans, root, child, open_span = make_spans()
    roots = span_tree_roots(spans)
    assert [s.span_id for s in roots] == [root.span_id, open_span.span_id]
    assert [s.span_id for s in children_of(spans, root)] == [child.span_id]


def test_span_summary_table_groups_by_protocol_outcome():
    spans, _, _, _ = make_spans()
    text = span_summary_table(spans).render()
    assert "repeated5" in text
    assert "completed" in text
    assert "p95" in text
    filtered = span_summary_table(spans, name="dma.initiate").render()
    assert "dma.initiate" in filtered
