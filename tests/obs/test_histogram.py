"""Log-bucketed latency histograms: error bounds, exemplars, merging."""

import random

import pytest

from repro.errors import ObservabilityError
from repro.obs.histogram import LatencyHistogram
from repro.sim.stats import LatencyStat
from repro.units import us


def test_bucket_geometry_is_monotone_and_covering():
    hist = LatencyHistogram(min_value_us=0.01, sub_buckets=32)
    last = -1
    for value in (0.001, 0.01, 0.02, 0.5, 1.0, 17.3, 1000.0, 1e6):
        index = hist.bucket_index(value)
        assert index >= last or value < 0.01
        lower, upper = hist.bucket_bounds(index)
        if value >= 0.01:
            assert lower <= value < upper * (1 + 1e-12)
        last = index


def test_percentiles_match_exact_stat_within_bound():
    rng = random.Random(11)
    for _ in range(50):
        hist = LatencyHistogram()
        stat = LatencyStat("exact", keep_samples=True)
        for _ in range(rng.randrange(1, 300)):
            value = rng.lognormvariate(3.0, 1.5)
            hist.record(value)
            stat.record(us(value))
        assert hist.verify_against_stat(
            stat, qs=(0.0, 25.0, 50.0, 90.0, 95.0, 99.0, 100.0)) == []


def test_relative_error_shrinks_with_more_sub_buckets():
    rng = random.Random(3)
    values = [rng.uniform(1.0, 1000.0) for _ in range(500)]
    coarse = LatencyHistogram(sub_buckets=4)
    fine = LatencyHistogram(sub_buckets=64)
    for value in values:
        coarse.record(value)
        fine.record(value)
    assert (fine.percentile_error_bound(50.0)
            < coarse.percentile_error_bound(50.0))


def test_verify_catches_divergent_data():
    hist = LatencyHistogram()
    stat = LatencyStat("exact", keep_samples=True)
    for value in (10.0, 20.0, 30.0):
        hist.record(value)
        stat.record(us(value * 3))  # a genuinely different stream
    assert hist.verify_against_stat(stat)
    short = LatencyStat("short", keep_samples=True)
    short.record(us(10.0))
    assert "counts differ" in hist.verify_against_stat(short)[0]


def test_exemplars_link_tail_samples_to_traces():
    hist = LatencyHistogram(exemplars_per_bucket=2)
    for i in range(99):
        hist.record(10.0, trace_id=f"fast-{i}")
    hist.record(5000.0, trace_id="slow-1")
    hist.record(6000.0, trace_id="slow-2")
    tail = hist.exemplars(99.0)
    ids = [e["trace_id"] for e in tail]
    assert "slow-2" in ids and "slow-1" in ids
    assert all(not t.startswith("fast") for t in ids)
    # Slowest first.
    assert ids[0] == "slow-2"
    # Bounded per bucket: newest win.
    for i in range(10):
        hist.record(6000.0, trace_id=f"slow-late-{i}")
    ids = [e["trace_id"] for e in hist.exemplars(99.0)]
    assert "slow-2" not in ids
    assert "slow-late-9" in ids


def test_merge_requires_matching_geometry():
    a, b = LatencyHistogram(), LatencyHistogram()
    a.record(10.0, trace_id="a")
    b.record(1000.0, trace_id="b")
    a.merge(b)
    assert a.count == 2
    assert a.max_us == 1000.0
    assert {e["trace_id"] for e in a.exemplars(0.0)} == {"a", "b"}
    with pytest.raises(ObservabilityError):
        a.merge(LatencyHistogram(sub_buckets=8))


def test_summary_and_empty_behavior():
    hist = LatencyHistogram()
    assert hist.summary() == {"p50": 0.0, "p95": 0.0, "p99": 0.0,
                              "mean": 0.0, "max": 0.0, "n": 0}
    assert hist.percentile(50.0) == 0.0
    assert hist.exemplars() == []
    hist.record(5.0)
    hist.record(15.0)
    summary = hist.summary()
    assert summary["n"] == 2
    assert summary["mean"] == 10.0
    assert summary["max"] == 15.0
    assert hist.percentile(0.0) == 5.0
    assert hist.percentile(100.0) == 15.0
    assert hist.to_dict()["count"] == 2
    assert len(hist) == 2


def test_validation():
    with pytest.raises(ObservabilityError):
        LatencyHistogram(min_value_us=0.0)
    with pytest.raises(ObservabilityError):
        LatencyHistogram(sub_buckets=0)
    hist = LatencyHistogram()
    with pytest.raises(ObservabilityError):
        hist.record(-1.0)
    with pytest.raises(ValueError):
        hist.percentile(101.0)
