"""SLO rules and multi-window burn-rate evaluation."""

import pytest

from repro.analysis.trends import ServiceTrendPoint
from repro.errors import ObservabilityError
from repro.obs.slo import (
    SloEngine,
    SloRule,
    default_slos,
    load_slo_spec,
)


def point(t_s, completed=100, failed=0, p99_us=50.0):
    return ServiceTrendPoint(t_s=t_s, completed=completed, failed=failed,
                             p99_us=p99_us)


def availability_engine(objective=0.9):
    return SloEngine([SloRule(name="avail", kind="availability",
                              objective=objective, short_windows=1,
                              long_windows=6, burn_threshold=2.0)])


def test_rule_validation():
    with pytest.raises(ObservabilityError):
        SloRule(name="x", kind="bogus")
    with pytest.raises(ObservabilityError):
        SloRule(name="", kind="availability")
    with pytest.raises(ObservabilityError):
        SloRule(name="x", kind="availability", objective=1.0)
    with pytest.raises(ObservabilityError):
        SloRule(name="x", kind="latency_p99")  # needs target_us
    with pytest.raises(ObservabilityError):
        SloRule(name="x", kind="availability", short_windows=4,
                long_windows=2)
    with pytest.raises(ObservabilityError):
        SloRule(name="x", kind="availability", burn_threshold=0.0)


def test_spec_loading_accepts_both_shapes():
    rules = [{"name": "a", "kind": "availability", "objective": 0.9}]
    assert load_slo_spec(rules)[0].name == "a"
    assert load_slo_spec({"slos": rules})[0].name == "a"
    with pytest.raises(ObservabilityError):
        load_slo_spec([])
    with pytest.raises(ObservabilityError):
        load_slo_spec({"slos": [{"name": "a", "kind": "availability",
                                 "bogus": 1}]})
    # Round-trip: to_dict output parses back to an equal rule.
    for rule in default_slos():
        assert SloRule.from_dict(rule.to_dict()) == rule


def test_single_noisy_window_does_not_page():
    """A short-window spike with a healthy long window stays quiet."""
    engine = availability_engine()
    for i in range(6):
        assert engine.observe(point(float(i))) == []
    # 30% failures for one window: short burn 3x, long burn 0.5x.
    assert engine.observe(point(6.0, completed=70, failed=30)) == []
    assert engine.breaches == []
    assert engine.evaluations == 7


def test_sustained_burn_pages_and_accumulates():
    engine = availability_engine()
    fired = []
    for i in range(8):
        fired.extend(engine.observe(point(float(i), completed=60,
                                          failed=40)))
    assert fired
    breach = fired[0]
    assert breach.rule == "avail"
    assert breach.burn_short >= 2.0 and breach.burn_long >= 2.0
    assert not breach.fatal
    assert engine.snapshot()["breached"]


def test_latency_rule_counts_bad_windows():
    engine = SloEngine([SloRule(name="tail", kind="latency_p99",
                                objective=0.5, target_us=100.0,
                                short_windows=1, long_windows=2,
                                burn_threshold=1.5)])
    assert engine.observe(point(0.0, p99_us=50.0)) == []
    assert engine.observe(point(1.0, p99_us=500.0)) == []  # long = 1x
    fired = engine.observe(point(2.0, p99_us=500.0))       # long = 2x
    assert [b.rule for b in fired] == ["tail"]
    # Empty windows contribute no latency error.
    quiet = SloEngine([SloRule(name="tail", kind="latency_p99",
                               objective=0.5, target_us=100.0)])
    assert quiet.observe(point(0.0, completed=0, p99_us=0.0)) == []


def test_wrong_page_is_budgetless_and_fatal():
    engine = SloEngine()  # the default set includes no-wrong-page
    assert engine.observe(point(0.0), wrong_transfers=0) == []
    fired = engine.observe(point(1.0), wrong_transfers=2)
    assert [b.rule for b in fired] == ["no-wrong-page"]
    assert fired[0].fatal
    assert "2 wrong-page" in fired[0].detail
    # The same cumulative count does not re-fire; an increase does.
    assert engine.observe(point(2.0), wrong_transfers=2) == []
    assert engine.observe(point(3.0), wrong_transfers=3)
    # Out-of-band path (shutdown on a window-aligned tick).
    assert engine.observe_wrong_transfers(3, t_s=4.0) == []
    late = engine.observe_wrong_transfers(5, t_s=4.0)
    assert late and late[0].fatal
    snapshot = engine.snapshot()
    assert snapshot["breached"]
    # inf burn rates serialize as None (the budget is zero).
    assert all(b["burn_short"] is None for b in snapshot["breaches"]
               if b["rule"] == "no-wrong-page")


def test_engine_is_deterministic():
    def run():
        engine = SloEngine()
        for i in range(10):
            engine.observe(point(float(i), completed=80, failed=20,
                                 p99_us=2000.0),
                           wrong_transfers=1 if i >= 5 else 0)
        return engine.snapshot()

    assert run() == run()
