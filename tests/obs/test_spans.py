"""Unit tests for the span tracer: nesting, pairing, caps, snapshots."""

import pytest

from repro.errors import ObservabilityError
from repro.obs.spans import NULL_SPAN, SpanTracer, disabled_tracer


class FakeClock:
    def __init__(self):
        self.now = 0

    def __call__(self):
        return self.now


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def tracer(clock):
    return SpanTracer(clock=clock, enabled=True)


def test_begin_end_records_duration(tracer, clock):
    span = tracer.begin("work")
    clock.now = 500
    tracer.end(span)
    assert span.closed
    assert span.duration == 500
    assert tracer.finished() == [span]


def test_nested_spans_parent_automatically(tracer):
    outer = tracer.begin("outer")
    inner = tracer.begin("inner")
    assert inner.parent_id == outer.span_id
    tracer.end(inner)
    tracer.end(outer)
    assert outer.parent_id is None


def test_explicit_parent_overrides_stack(tracer):
    a = tracer.begin("a")
    b = tracer.begin("b", parent=None)  # default: stack top (a)
    assert b.parent_id == a.span_id
    c = tracer.begin("c", parent=a, stack=False)
    assert c.parent_id == a.span_id
    tracer.end(c)
    tracer.end(b)
    tracer.end(a)


def test_null_span_parent_means_root(tracer):
    span = tracer.begin("root", parent=NULL_SPAN)
    assert span.parent_id is None
    tracer.end(span)


def test_unbalanced_pairing_raises(tracer):
    outer = tracer.begin("outer")
    tracer.begin("inner")
    with pytest.raises(ObservabilityError, match="unbalanced"):
        tracer.end(outer)


def test_double_end_raises(tracer):
    span = tracer.begin("once")
    tracer.end(span)
    with pytest.raises(ObservabilityError, match="not open"):
        tracer.end(span)


def test_end_of_foreign_span_raises(tracer, clock):
    other = SpanTracer(clock=clock, enabled=True)
    span = other.begin("elsewhere")
    with pytest.raises(ObservabilityError):
        tracer.end(span)


def test_background_span_ends_out_of_order(tracer, clock):
    sync = tracer.begin("sync")
    background = tracer.begin("transfer", stack=False)
    tracer.end(sync)          # fine: background never joined the stack
    clock.now = 999
    tracer.end(background)
    assert background.end == 999


def test_context_manager_balances(tracer):
    with tracer.span("phase") as span:
        assert tracer.current is span
    assert span.closed
    tracer.require_balanced()


def test_require_balanced_names_open_spans(tracer):
    tracer.begin("left-open")
    with pytest.raises(ObservabilityError, match="left-open"):
        tracer.require_balanced()


def test_disabled_tracer_returns_null_span():
    tracer = disabled_tracer()
    span = tracer.begin("anything", pid=3)
    assert span is NULL_SPAN
    tracer.end(span)  # no-op, no raise
    assert len(tracer) == 0
    assert span.set(x=1) is span
    assert span.attrs == {}


def test_max_spans_ring_buffer_caps_finished(clock):
    tracer = SpanTracer(clock=clock, enabled=True, max_spans=3)
    for index in range(7):
        tracer.end(tracer.begin(f"s{index}"))
    assert len(tracer) == 3
    assert [s.name for s in tracer.finished()] == ["s4", "s5", "s6"]
    assert tracer.dropped == 4


def test_attrs_set_on_begin_end_and_chain(tracer):
    span = tracer.begin("dma", pid=1).set(size=64)
    tracer.end(span, outcome="completed")
    assert span.attrs == {"pid": 1, "size": 64, "outcome": "completed"}


def test_snapshot_restore_roundtrip(tracer, clock):
    first = tracer.begin("kept")
    tracer.end(first)
    token = tracer.snapshot()
    span = tracer.begin("discarded")
    tracer.end(span)
    tracer.restore(token)
    assert [s.name for s in tracer.all_spans()] == ["kept"]
    # Span ids continue from the restored counter, not the discarded one.
    again = tracer.begin("again")
    assert again.span_id == span.span_id
    tracer.end(again)


def test_snapshot_is_none_when_disabled_and_empty():
    tracer = disabled_tracer()
    assert tracer.snapshot() is None
    tracer.restore(None)  # restoring the trivial token is a no-op
    assert len(tracer) == 0


def test_clear_resets_everything(tracer):
    tracer.end(tracer.begin("a"))
    tracer.begin("open")
    tracer.clear()
    assert tracer.all_spans() == []
    assert tracer.current is None
