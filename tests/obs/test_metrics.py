"""Unit tests for the pull-based metrics sampler."""

import pytest

from repro.errors import ObservabilityError
from repro.obs.metrics import MetricsSampler


class FakeClock:
    def __init__(self):
        self.now = 0

    def __call__(self):
        return self.now


def test_disabled_sampler_never_records():
    clock = FakeClock()
    sampler = MetricsSampler(clock, sources=[lambda: {"x": 1.0}])
    assert not sampler.enabled
    assert sampler.poll() is False
    assert len(sampler) == 0


def test_non_positive_interval_rejected():
    with pytest.raises(ObservabilityError):
        MetricsSampler(FakeClock(), interval=0)
    with pytest.raises(ObservabilityError):
        MetricsSampler(FakeClock(), interval=-5)


def test_poll_records_on_cadence_only():
    clock = FakeClock()
    value = {"n": 0.0}
    sampler = MetricsSampler(clock, sources=[lambda: dict(value)],
                             interval=100)
    assert sampler.poll() is True      # t=0 is the first cadence point
    value["n"] = 1.0
    clock.now = 50
    assert sampler.poll() is False     # not due yet
    clock.now = 100
    assert sampler.poll() is True
    assert sampler.series("n") == [(0, 0.0), (100, 1.0)]


def test_poll_catches_up_after_time_jump():
    clock = FakeClock()
    sampler = MetricsSampler(clock, sources=[lambda: {"x": 1.0}],
                             interval=10)
    sampler.poll()
    clock.now = 1_000   # far past many cadence points
    sampler.poll()
    assert len(sampler) == 2           # one sample covers the gap
    clock.now = 1_005
    assert sampler.poll() is False     # next due is 1010, not 1010-990


def test_sources_merge_later_wins():
    clock = FakeClock()
    sampler = MetricsSampler(clock, sources=[lambda: {"a": 1.0, "b": 2.0}],
                             interval=1)
    sampler.add_source(lambda: {"b": 9.0, "c": 3.0})
    sample = sampler.sample_now()
    assert sample == {"a": 1.0, "b": 9.0, "c": 3.0}
    assert sampler.names() == ["a", "b", "c"]


def test_deltas_of_cumulative_counter():
    clock = FakeClock()
    value = {"bytes": 0.0}
    sampler = MetricsSampler(clock, sources=[lambda: dict(value)],
                             interval=10)
    for when, total in ((0, 0.0), (10, 64.0), (20, 192.0)):
        clock.now = when
        value["bytes"] = total
        sampler.poll()
    assert sampler.deltas("bytes") == [(0, 0.0), (10, 64.0), (20, 128.0)]


def test_to_dict_is_json_ready():
    clock = FakeClock()
    sampler = MetricsSampler(clock, sources=[lambda: {"x": 2.0}],
                             interval=1_000_000)  # 1 us in ps
    sampler.poll()
    out = sampler.to_dict()
    assert out["interval_us"] == 1.0
    assert out["n_samples"] == 1
    assert out["series"]["x"] == [[0.0, 2.0]]


def test_clear_restarts_cadence():
    clock = FakeClock()
    sampler = MetricsSampler(clock, sources=[lambda: {"x": 1.0}],
                             interval=10)
    sampler.poll()
    sampler.clear()
    assert len(sampler) == 0
    assert sampler.poll() is True      # cadence starts over at t=now
