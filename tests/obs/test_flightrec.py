"""The flight recorder: bounded rings and postmortem bundles."""

from repro.obs.flightrec import (
    REASON_SLO_BREACH,
    REASON_WRONG_DATA,
    FlightRecorder,
)
from repro.obs.export import validate_chrome_trace
from repro.service.requests import Request
from repro.service.shard import ServiceShard, ShardConfig
from repro.units import us


def test_completion_ring_is_bounded_and_summarized():
    shard = ServiceShard(0, ShardConfig(seed=1, spans_enabled=True))
    recorder = FlightRecorder("shard0", capacity=4)
    for i in range(10):
        recorder.note(shard.execute(Request(tenant="a", size=256,
                                            req_id=i)))
    assert len(recorder) == 4
    latest = recorder.completions[-1]
    assert latest["req_id"] == 9
    assert latest["outcome"] == "completed"
    assert latest["latency_us"] > 0.0


def test_bundle_freezes_schema_valid_evidence():
    shard = ServiceShard(0, ShardConfig(seed=1, spans_enabled=True,
                                        metrics_interval=us(5)))
    recorder = shard.flightrec
    completion = shard.execute(Request(tenant="a", size=256, req_id=1))
    bundle = recorder.bundle(
        REASON_WRONG_DATA, ws=shard.ws, seed=7, tick=3,
        offending=[completion.to_dict()],
        fault_plan={"seed": 0, "rules": []},
        counters=shard.counters(), detail="test incident")
    assert bundle["kind"] == "postmortem"
    assert bundle["reason"] == REASON_WRONG_DATA
    assert bundle["seed"] == 7 and bundle["tick"] == 3
    assert bundle["offending"][0]["req_id"] == 1
    assert bundle["recent_completions"]
    assert validate_chrome_trace(bundle["trace"]) == []
    assert bundle["trace"]["traceEvents"]
    assert bundle["metrics_window"]
    assert recorder.bundles == [bundle]


def test_bundle_works_with_observability_disabled():
    shard = ServiceShard(0, ShardConfig(seed=1))
    shard.execute(Request(tenant="a", size=256, req_id=1))
    bundle = shard.flightrec.bundle(REASON_SLO_BREACH, ws=shard.ws,
                                    seed=7, tick=0)
    assert validate_chrome_trace(bundle["trace"]) == []
    assert bundle["metrics_window"] == []


def test_bundle_count_is_bounded():
    shard = ServiceShard(0, ShardConfig(seed=1))
    recorder = FlightRecorder("shard0", max_bundles=2)
    for tick in range(5):
        recorder.bundle(REASON_SLO_BREACH, ws=shard.ws, seed=7,
                        tick=tick)
    assert len(recorder.bundles) == 2
    assert recorder.dropped_bundles == 3
    assert [b["tick"] for b in recorder.bundles] == [3, 4]


def test_wrong_data_completion_dumps_a_bundle():
    """The shard wires wrong-data detection straight into its recorder."""
    shard = ServiceShard(0, ShardConfig(seed=1, spans_enabled=True))
    shard.execute(Request(tenant="a", size=256, req_id=1))
    tenant = shard.tenant("a")
    shard.ws.ram.write(tenant.src_paddr, bytes(64))
    bad = shard.execute(Request(tenant="a", size=64, req_id=2))
    assert not bad.ok
    assert len(shard.flightrec.bundles) == 1
    bundle = shard.flightrec.bundles[0]
    assert bundle["reason"] == REASON_WRONG_DATA
    assert bundle["offending"][0]["req_id"] == 2
    assert shard.snapshot()["postmortems"] == 1
