"""Trace context: identity propagation and causal-tree reassembly."""

import itertools

import pytest

from repro.errors import ObservabilityError
from repro.obs.context import (
    TraceContext,
    causal_tree,
    make_trace_id,
    spans_for_trace,
)
from repro.obs.spans import SpanTracer


def tracer():
    ticks = itertools.count()
    return SpanTracer(clock=lambda: next(ticks), enabled=True)


def test_trace_ids_are_deterministic_and_distinct():
    assert make_trace_id(7, 12) == make_trace_id(7, 12)
    assert make_trace_id(7, 12) == "7-00000012"
    assert make_trace_id(7, 12) != make_trace_id(7, 13)
    assert make_trace_id(7, 12) != make_trace_id(8, 12)


def test_child_reparents_without_changing_identity():
    ctx = TraceContext(trace_id="7-00000001", tenant="alice",
                       request_id=1)
    child = ctx.child(42, "frontend")
    assert child.trace_id == ctx.trace_id
    assert child.parent_span_id == 42
    assert child.origin == "frontend"
    assert child.tenant == "alice"


def test_wire_roundtrip_and_validation():
    ctx = TraceContext(trace_id="7-00000003", parent_span_id=9,
                       origin="frontend", tenant="bob", request_id=3)
    assert TraceContext.from_dict(ctx.to_dict()) == ctx
    with pytest.raises(ObservabilityError):
        TraceContext.from_dict({"trace_id": "x", "bogus": 1})
    with pytest.raises(ObservabilityError):
        TraceContext.from_dict({"origin": "frontend"})


def test_activate_stamps_spans_and_links_processes():
    """Two tracers, one trace: the shard root hangs off the frontend
    span via remote_parent, and causal_tree accepts the merged set."""
    front, shard = tracer(), tracer()
    ctx = TraceContext(trace_id="7-00000001", tenant="a", request_id=1)
    with front.activate(ctx, process="frontend"):
        root = front.begin("request")
        front.end(root)
    downstream = ctx.child(root.span_id, "frontend")
    with shard.activate(downstream, process="shard0"):
        execute = shard.begin("shard.execute")
        inner = shard.begin("dma")
        shard.end(inner)
        shard.end(execute)
    spans = front.finished() + shard.finished()
    assert all(s.attrs["trace_id"] == "7-00000001" for s in spans)
    tree = causal_tree(spans, "7-00000001")
    assert tree["root"] is root
    assert tree["processes"] == ["frontend", "shard0"]
    assert len(tree["spans"]) == 3
    assert spans_for_trace(spans, "missing") == []


def test_causal_tree_rejects_disconnection():
    front, shard = tracer(), tracer()
    ctx = TraceContext(trace_id="t", request_id=1)
    with front.activate(ctx, process="frontend"):
        root = front.begin("request")
        front.end(root)
    # The downstream hop names a frontend span that was never recorded.
    with shard.activate(ctx.child(999, "frontend"), process="shard0"):
        span = shard.begin("shard.execute")
        shard.end(span)
    with pytest.raises(ObservabilityError, match="orphan"):
        causal_tree(front.finished() + shard.finished(), "t")
    with pytest.raises(ObservabilityError, match="no spans"):
        causal_tree(front.finished(), "other")


def test_causal_tree_rejects_multiple_roots():
    one, two = tracer(), tracer()
    ctx = TraceContext(trace_id="t", request_id=1)
    for t, name in ((one, "p1"), (two, "p2")):
        with t.activate(ctx, process=name):
            span = t.begin("request")
            t.end(span)
    with pytest.raises(ObservabilityError, match="2 root"):
        causal_tree(one.finished() + two.finished(), "t")
