"""Unit tests for the wall-clock phase profiler and its checker hook."""

from repro.obs.profile import PhaseProfiler
from repro.verify.adversary import fig8_scenario
from repro.verify.incremental import CheckStats, check_scenario_incremental
from repro.verify.model_check import check_scenario


def test_phase_context_manager_accumulates():
    profiler = PhaseProfiler()
    with profiler.phase("work"):
        pass
    with profiler.phase("work"):
        pass
    assert profiler.counts["work"] == 2
    assert profiler.seconds["work"] >= 0.0


def test_count_without_timing():
    profiler = PhaseProfiler()
    profiler.count("hit")
    profiler.count("hit", 3)
    assert profiler.counts["hit"] == 4
    assert "hit" not in profiler.seconds


def test_merge_folds_both_dicts():
    a = PhaseProfiler()
    a.add_seconds("x", 1.0)
    b = PhaseProfiler()
    b.add_seconds("x", 2.0)
    b.count("y")
    a.merge(b)
    assert a.seconds["x"] == 3.0
    assert a.counts["x"] == 2
    assert a.counts["y"] == 1


def test_report_shape():
    profiler = PhaseProfiler()
    profiler.add_seconds("snapshot", 0.5, n=5)
    profiler.count("expansion", 7)
    report = profiler.report()
    assert report["snapshot"]["count"] == 5
    assert report["snapshot"]["seconds"] == 0.5
    assert report["snapshot"]["mean_us"] == 100000.0
    assert report["expansion"] == {"seconds": 0.0, "count": 7,
                                   "mean_us": 0.0}


def test_table_renders():
    profiler = PhaseProfiler()
    profiler.add_seconds("leaf", 0.001, n=2)
    text = profiler.table().render()
    assert "Phase profile" in text
    assert "leaf" in text


def test_checker_profiler_counts_match_stats():
    scenario = fig8_scenario(1)
    profiler = PhaseProfiler()
    stats = CheckStats()
    profiled = check_scenario_incremental(scenario, profiler=profiler,
                                          stats=stats)
    # The profiled result is identical to the unprofiled / naive ones.
    assert profiled == check_scenario_incremental(scenario)
    assert profiled == check_scenario(scenario)
    # Phase counts mirror the CheckStats work accounting.
    assert profiler.counts["snapshot"] == stats.snapshots
    assert profiler.counts["restore"] == stats.restores
    assert profiler.counts["deliver"] == stats.accesses_delivered
    assert profiler.counts["transposition_hit"] == stats.transposition_hits
    assert profiler.counts["expansion"] > 0
    assert profiler.seconds["deliver"] > 0.0
