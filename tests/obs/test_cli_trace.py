"""Smoke tests: ``repro trace`` / ``repro metrics`` end to end.

The acceptance check for the observability layer: running the Fig. 8
two-adversary workload through the CLI must produce a schema-valid
Chrome trace in which every DMA attempt is one complete causal span
tree — initiate -> shadow stores/loads -> transfer -> completion or
rejection — tagged with its outcome.
"""

import json

import pytest

from repro.cli import main
from repro.obs.export import (
    children_of,
    span_tree_roots,
    validate_chrome_trace,
)
from repro.obs.runs import traced_adversary_run

ROOT_NAMES = {"dma", "dma.reliable", "dma.initiate"}


@pytest.fixture(scope="module")
def run():
    return traced_adversary_run()


def test_trace_chrome_export_is_schema_valid(tmp_path, capsys):
    path = tmp_path / "trace.json"
    code = main(["trace", "--export", "chrome", "--output", str(path)])
    out = capsys.readouterr().out
    assert code == 0
    assert "wrote" in out and "perfetto" in out
    trace = json.loads(path.read_text())
    assert validate_chrome_trace(trace) == []
    assert {e["ph"] for e in trace["traceEvents"]} >= {"M", "X", "i", "C"}


def test_trace_summary_reports_every_outcome(capsys):
    code = main(["trace", "--export", "summary"])
    out = capsys.readouterr().out
    assert code == 0
    for outcome in ("completed", "aborted", "retried", "fell-back"):
        assert outcome in out


def test_trace_jsonl_export(tmp_path, capsys):
    path = tmp_path / "spans.jsonl"
    code = main(["trace", "--export", "jsonl", "--output", str(path)])
    assert code == 0
    capsys.readouterr()
    lines = [json.loads(line) for line in path.read_text().splitlines()]
    assert lines and all("id" in line and "attrs" in line for line in lines)


def test_metrics_command_prints_series(capsys):
    code = main(["metrics"])
    out = capsys.readouterr().out
    assert code == 0
    assert "Metric time series" in out
    assert "engine.bytes_moved" in out


def test_every_dma_attempt_is_one_causal_tree(run):
    spans = run.spans()
    roots = [s for s in span_tree_roots(spans) if s.name in ROOT_NAMES]
    # 6 completed + 1 aborted + 1 retried + 1 fell-back.
    assert len(roots) == 9
    outcomes = sorted(s.attrs.get("outcome") for s in roots)
    assert outcomes == (["aborted"] + ["completed"] * 6
                        + ["fell-back", "retried"])
    for root in roots:
        assert root.closed
        assert root.track.startswith("proc")


def test_completed_tree_has_full_causal_chain(run):
    spans = run.spans()
    completed = [s for s in span_tree_roots(spans)
                 if s.name == "dma" and s.attrs.get("outcome") == "completed"]
    tree = completed[0]
    initiate = children_of(spans, tree)
    assert [s.name for s in initiate] == ["dma.initiate"]
    inner = children_of(spans, initiate[0])
    names = [s.name for s in inner]
    # The repeated5 pattern is five alternating shadow accesses, each
    # carrying the recognizer state transition it caused.
    assert len([n for n in names
                if n in ("dma.shadow_store", "dma.shadow_load")]) == 5
    store = next(s for s in inner if s.name == "dma.shadow_store")
    assert "state_from" in store.attrs and "state_to" in store.attrs
    assert store.attrs["protocol"] == "repeated5"
    # The transfer span hangs off the access that completed the pattern
    # and rides the engine track until the data lands.
    last = inner[-1]
    assert last.attrs["state_to"] == "idle"   # pattern consumed
    transfer = next(s for s in children_of(spans, last)
                    if s.name == "dma.transfer")
    assert transfer.track == "engine"
    assert transfer.attrs.get("outcome") == "completed"


def test_fell_back_tree_degrades_to_kernel(run):
    spans = run.spans()
    fell_back = next(s for s in span_tree_roots(spans)
                     if s.attrs.get("outcome") == "fell-back")
    names = [s.name for s in children_of(spans, fell_back)]
    assert "dma.fallback" in names
    assert "dma.backoff" in names
    fallback = next(s for s in children_of(spans, fell_back)
                    if s.name == "dma.fallback")
    kernel_initiate = children_of(spans, fallback)
    assert any(s.attrs.get("via") == "kernel" for s in kernel_initiate)


def test_fault_injections_appear_as_spans(run):
    spans = run.spans()
    faults = [s for s in spans if s.name.startswith("fault.")]
    assert any(s.name == "fault.store.drop" for s in faults)
    assert any(s.name == "fault.load.drop" for s in faults)
    assert all(s.track == "faults" for s in faults)
