"""Observability layer tests."""
