#!/usr/bin/env python3
"""Context exhaustion and the kernel fallback (§3.1-§3.2).

The paper: register contexts are few ("say 4 to 8"); with extended
shadow addressing, 1-2 address bits give 2-4 contexts, and "if more
processes would like to start DMA operations, the rest will have to go
through the kernel."

This example spawns more processes than the engine has contexts, opens
the best channel available for each (user level while contexts last,
then the Fig. 1 syscall path), runs a transfer on every channel, and
shows the two-tier latency the paper's design implies.

Run:  python examples/context_exhaustion.py
"""

from repro import MachineConfig, Workstation, open_channel
from repro.analysis.report import Table, format_us
from repro.core.report import stats_table


def main() -> None:
    ws = Workstation(MachineConfig(method="keyed", n_contexts=2))
    print(f"engine has {ws.config.n_contexts} register contexts; "
          f"spawning 5 processes\n")

    table = Table("Per-process channel assignment and cost",
                  ["process", "channel", "warm initiation (us)",
                   "data moved"])
    for index in range(5):
        proc = ws.kernel.spawn(f"worker{index}")
        chan = open_channel(ws, proc)
        shadow = chan.via == "user"
        src = ws.kernel.alloc_buffer(proc, 8192, shadow=shadow)
        dst = ws.kernel.alloc_buffer(proc, 8192, shadow=shadow)
        payload = bytes([index + 1]) * 64
        ws.ram.write(src.paddr, payload)
        chan.initiate(src.vaddr, dst.vaddr, 64)       # warm TLB
        ws.drain()
        result = chan.dma(src.vaddr, dst.vaddr, 64)
        moved = ws.ram.read(dst.paddr, 64) == payload
        table.add_row(proc.name,
                      f"user ({chan.method.name})" if shadow
                      else "kernel fallback",
                      format_us(result.initiation.elapsed_us, 2),
                      "yes" if moved else "NO")
    print(table.render())

    print()
    print(stats_table(ws, "What the machine did").render())
    print("\nThe first two processes initiate in ~2.3 us; the overflow "
          "processes still work, at the 18.6 us kernel price -- a "
          "graceful two-tier degradation rather than a hard limit.")


if __name__ == "__main__":
    main()
