#!/usr/bin/env python3
"""Quickstart: one user-level DMA, end to end.

Builds the paper's machine (Alpha 3000/300 + 12.5 MHz TurboChannel +
DMA engine running the key-based protocol of §3.1), asks the OS for a
DMA binding and two buffers, and performs one transfer entirely from
user level — four uncached instructions, no syscall.

Run:  python examples/quickstart.py
"""

from repro import DmaChannel, MachineConfig, Workstation


def main() -> None:
    # A workstation wired for the key-based method (Fig. 3).
    ws = Workstation(MachineConfig(method="keyed"))

    # The OS side: spawn a process, grant it user-level DMA (a register
    # context + a 60-bit secret key), allocate shadow-mapped buffers.
    proc = ws.kernel.spawn("app")
    binding = ws.kernel.enable_user_dma(proc)
    src = ws.kernel.alloc_buffer(proc, 8192)
    dst = ws.kernel.alloc_buffer(proc, 8192)
    print(f"process {proc.pid} got context {binding.ctx_id} "
          f"and key {binding.key:#x}")

    # Put something recognizable in the source buffer.
    message = b"user-level DMA without kernel modification"
    ws.ram.write(src.paddr, message)

    # The user side: build and run Fig. 3's four-instruction sequence.
    from repro.hw.isa import format_program

    chan = DmaChannel(ws, proc)
    program = chan.program(src.vaddr, dst.vaddr, len(message))
    print("initiation sequence (Fig. 3):")
    print(format_program(program))

    result = chan.dma(src.vaddr, dst.vaddr, len(message))
    print(f"initiated in {result.initiation.elapsed_us:.2f} us "
          f"(paper's Table 1: 2.3 us for this method)")
    assert result.ok

    moved = ws.ram.read(dst.paddr, len(message))
    print(f"destination now holds: {moved.decode()!r}")
    assert moved == message


if __name__ == "__main__":
    main()
