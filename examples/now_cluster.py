#!/usr/bin/env python3
"""A Network of Workstations: remote DMA with user-level initiation.

Two simulated workstations on an ATM link exchange messages through the
global physical address space (the authors' Telegraphos model): the
sender's NIC deposits bytes directly into the receiver's memory.  The
example compares kernel-level and user-level initiation across message
sizes — the paper's motivating trend in action.

Run:  python examples/now_cluster.py
"""

from repro.analysis.report import Table, format_us
from repro.core.api import DmaChannel
from repro.core.machine import MachineConfig
from repro.net import ATM_155, GIGABIT, Cluster
from repro.units import to_us

SIZES = [64, 512, 4096, 32768]


def build_sender(cluster, method):
    sender_ws, receiver_ws = cluster.node(0), cluster.node(1)
    sender = sender_ws.kernel.spawn("sender")
    if method != "kernel":
        sender_ws.kernel.enable_user_dma(sender)
    src = sender_ws.kernel.alloc_buffer(sender, 65536)
    receiver = receiver_ws.kernel.spawn("receiver")
    dst = receiver_ws.kernel.alloc_buffer(receiver, 65536, shadow=False)
    window = sender_ws.kernel.map_remote_window(
        sender, receiver_ws.nic.global_address(dst.paddr), 65536)
    return sender_ws, receiver_ws, sender, src, dst, window


def one_way_us(method, link, size):
    cluster = Cluster(2, link_spec=link,
                      config=MachineConfig(method=method,
                                           ram_size=1 << 24))
    sender_ws, receiver_ws, sender, src, dst, window = build_sender(
        cluster, method)
    sender_ws.ram.write(src.paddr, bytes(size))
    chan = DmaChannel(sender_ws, sender)
    chan.initiate(src.vaddr, window, 64)  # warm-up
    cluster.run_until_quiet()
    start = cluster.sim.now
    result = chan.initiate(src.vaddr, window, size)
    assert result.ok
    cluster.run_until_quiet()
    return to_us(cluster.sim.now - start)


def demo_data_movement() -> None:
    print("=== Remote write demo (extended shadow, ATM-155) ===")
    cluster = Cluster(2, link_spec=ATM_155,
                      config=MachineConfig(method="extshadow"))
    sender_ws, receiver_ws, sender, src, dst, window = build_sender(
        cluster, "extshadow")
    payload = b"deposited straight into remote memory"
    sender_ws.ram.write(src.paddr, payload)
    chan = DmaChannel(sender_ws, sender)
    result = chan.initiate(src.vaddr, window, len(payload))
    print(f"  initiation: {result.elapsed_us:.2f} us, "
          f"status ok={result.ok}")
    cluster.run_until_quiet()
    print(f"  receiver memory: "
          f"{receiver_ws.ram.read(dst.paddr, len(payload)).decode()!r}\n")


def latency_tables() -> None:
    for link in (ATM_155, GIGABIT):
        table = Table(f"One-way message time on {link.name} (us)",
                      ["method"] + [f"{s} B" for s in SIZES])
        rows = {}
        for method in ("kernel", "extshadow"):
            rows[method] = [one_way_us(method, link, s) for s in SIZES]
            table.add_row(method,
                          *(format_us(v, 1) for v in rows[method]))
        table.add_row("speedup",
                      *(f"{k / u:.2f}x" for k, u in
                        zip(rows["kernel"], rows["extshadow"])))
        print(table.render())
        print()


def main() -> None:
    demo_data_movement()
    latency_tables()
    print("Small messages gain the full initiation gap; large ones "
          "converge as wire time dominates -- and the faster the link, "
          "the larger the size range where the kernel path hurts "
          "(the paper's introduction, quantified).")


if __name__ == "__main__":
    main()
