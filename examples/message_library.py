#!/usr/bin/env python3
"""A syscall-free messaging layer — the paper's payoff, end to end.

Builds the user-level message library from `repro.msg` on a two-node
cluster: a ring in the receiver's memory filled by remote user-level
DMA, credits returned by reverse DMA, and a cluster barrier built on
remote atomic_add.  The same traffic is then run over kernel-initiated
transfers for the cost comparison.

Run:  python examples/message_library.py
"""

from repro.analysis.report import Table, format_us
from repro.core.machine import MachineConfig
from repro.msg import ClusterBarrier, MessageChannel, RingLayout
from repro.net import GIGABIT, Cluster
from repro.units import to_us


def build_channel(method):
    cluster = Cluster(2, link_spec=GIGABIT,
                      config=MachineConfig(method=method,
                                           atomic_mode="extshadow"))
    ws0, ws1 = cluster.nodes
    sender = ws0.kernel.spawn("sender")
    receiver = ws1.kernel.spawn("receiver")
    if method != "kernel":
        ws0.kernel.enable_user_dma(sender)
        ws1.kernel.enable_user_dma(receiver)
    channel = MessageChannel.create(
        ws0, sender, ws1, receiver,
        layout=RingLayout(n_slots=8, slot_size=1024))
    return cluster, channel


def demo_messaging() -> None:
    print("=== User-level messaging across the cluster ===")
    cluster, channel = build_channel("extshadow")
    for index in range(6):
        assert channel.send(f"request #{index}".encode())
    replies = channel.drain()
    for message in replies:
        print(f"  received: {message.decode()!r}")
    print(f"  stats: {channel.stats}")
    syscalls = sum(ws.cpu.stats.counter("syscalls").value
                   for ws in cluster.nodes)
    print(f"  syscalls on the data path: {syscalls}\n")


def compare_costs() -> None:
    table = Table("Per-message sender cost, 64 B payload (us)",
                  ["transport", "send cost", "syscalls/message"])
    for method in ("extshadow", "kernel"):
        cluster, channel = build_channel(method)
        channel.send(b"warm")
        channel.recv()
        ws = channel.sender.ws
        syscalls_before = ws.cpu.stats.counter("syscalls").value
        start = ws.sim.now
        channel.send(b"x" * 64)
        cost = to_us(ws.sim.now - start)
        syscalls = ws.cpu.stats.counter("syscalls").value - syscalls_before
        channel.recv()
        table.add_row("user-level DMA" if method != "kernel"
                      else "kernel syscalls",
                      format_us(cost, 1), syscalls)
    print(table.render())
    print()


def demo_rpc() -> None:
    print("=== Request/reply RPC over user-level DMA ===")
    import struct

    from repro.msg import make_rpc_pair

    cluster = Cluster(2, link_spec=GIGABIT,
                      config=MachineConfig(method="extshadow"))
    ws0, ws1 = cluster.nodes
    client_proc = ws0.kernel.spawn("client")
    server_proc = ws1.kernel.spawn("server")
    ws0.kernel.enable_user_dma(client_proc)
    ws1.kernel.enable_user_dma(server_proc)

    def square(payload: bytes) -> bytes:
        (value,) = struct.unpack("<q", payload)
        return struct.pack("<q", value * value)

    client, server = make_rpc_pair(ws0, client_proc, ws1, server_proc,
                                   square)
    client.call(struct.pack("<q", 2), server)  # warm
    start = cluster.sim.now
    reply = client.call(struct.pack("<q", 21), server)
    rtt = to_us(cluster.sim.now - start)
    (result,) = struct.unpack("<q", reply)
    print(f"  square(21) = {result}, round trip {rtt:.1f} us, "
          f"zero syscalls\n")


def demo_barrier() -> None:
    print("=== Cluster barrier over remote atomic_add ===")
    cluster = Cluster(3, config=MachineConfig(method="extshadow",
                                              atomic_mode="extshadow"))
    members = [(ws, ws.kernel.spawn(f"rank{i}"))
               for i, ws in enumerate(cluster.nodes)]
    barrier = ClusterBarrier(cluster.node(0), members)
    tickets = [barrier.arrive(0), barrier.arrive(1)]
    print(f"  two of three arrived -> released? "
          f"{[t.passed for t in tickets]}")
    tickets.append(barrier.arrive(2))
    print(f"  third arrives        -> released? "
          f"{[t.passed for t in tickets]}")
    print(f"  episodes completed: {barrier.episodes}")


def main() -> None:
    demo_messaging()
    compare_costs()
    demo_rpc()
    demo_barrier()


if __name__ == "__main__":
    main()
