#!/usr/bin/env python3
"""Halo exchange: the paper's scientific-computing motivation, running.

The introduction motivates user-level DMA with "high performance
scientific computing" on Networks of Workstations.  This example runs
the communication kernel of every distributed stencil code — the halo
(ghost-cell) exchange — on a 4-node simulated cluster: each node owns a
strip of a 1-D heat-diffusion domain and swaps boundary cells with its
neighbours through `repro.msg` channels every step, then relaxes its
strip locally.

Halo messages are tiny (one boundary cell each way), so per-step time is
dominated by *initiation* — exactly the regime where kernel-initiated
DMA hurts.  The example runs the same computation over user-level and
kernel transports and reports per-step communication time.

Run:  python examples/halo_exchange.py
"""

import struct

from repro.analysis.report import Table, format_us
from repro.core.machine import MachineConfig
from repro.msg import MessageChannel, RingLayout
from repro.net import GIGABIT, Cluster
from repro.units import to_us

N_NODES = 4
CELLS_PER_NODE = 16
STEPS = 5


def pack(values):
    return struct.pack(f"<{len(values)}d", *values)


def unpack(data):
    return list(struct.unpack(f"<{len(data) // 8}d", data))


class StencilNode:
    """One node's strip of the domain plus its halo channels."""

    def __init__(self, index, ws, proc):
        self.index = index
        self.ws = ws
        self.proc = proc
        # Interior cells; boundaries exchanged each step.
        self.cells = [0.0] * CELLS_PER_NODE
        if index == 0:
            self.cells[0] = 100.0  # heat source at the left edge
        self.left_halo = 0.0
        self.right_halo = 0.0
        self.to_left = None     # MessageChannel towards node index-1
        self.to_right = None    # MessageChannel towards node index+1
        self.from_left = None
        self.from_right = None

    def send_halos(self):
        if self.to_left is not None:
            assert self.to_left.send(pack([self.cells[0]]))
        if self.to_right is not None:
            assert self.to_right.send(pack([self.cells[-1]]))

    def receive_halos(self):
        if self.from_left is not None:
            message = self.from_left.recv()
            self.left_halo = unpack(message)[0]
        if self.from_right is not None:
            message = self.from_right.recv()
            self.right_halo = unpack(message)[0]

    def relax(self):
        """One Jacobi sweep over the strip (the local compute phase)."""
        left = [self.left_halo] + self.cells[:-1]
        right = self.cells[1:] + [self.right_halo]
        self.cells = [
            (l + c + r) / 3.0
            for l, c, r in zip(left, self.cells, right)]
        if self.index == 0:
            self.cells[0] = 100.0  # boundary condition


def build_ring_of_nodes(method):
    cluster = Cluster(N_NODES, link_spec=GIGABIT,
                      config=MachineConfig(method=method))
    nodes = []
    for index, ws in enumerate(cluster.nodes):
        proc = ws.kernel.spawn(f"rank{index}")
        if method != "kernel":
            ws.kernel.enable_user_dma(proc)
        nodes.append(StencilNode(index, ws, proc))
    layout = RingLayout(n_slots=4, slot_size=64)
    for left, right in zip(nodes, nodes[1:]):
        # left -> right channel and right -> left channel.
        rightward = MessageChannel.create(left.ws, left.proc,
                                          right.ws, right.proc, layout)
        leftward = MessageChannel.create(right.ws, right.proc,
                                         left.ws, left.proc, layout)
        left.to_right = rightward
        right.from_left = rightward
        right.to_left = leftward
        left.from_right = leftward
    return cluster, nodes


def run_simulation(method):
    cluster, nodes = build_ring_of_nodes(method)
    comm_time = 0
    for _step in range(STEPS):
        start = cluster.sim.now
        for node in nodes:
            node.send_halos()
        for node in nodes:
            node.receive_halos()
        comm_time += cluster.sim.now - start
        for node in nodes:
            node.relax()
    return nodes, to_us(comm_time) / STEPS


def main() -> None:
    table = Table(
        f"Halo exchange on {N_NODES} nodes, {STEPS} steps "
        f"(2 boundary cells per node per step)",
        ["transport", "comm time per step (us)"])
    results = {}
    for method in ("extshadow", "kernel"):
        nodes, per_step = run_simulation(method)
        results[method] = (nodes, per_step)
        table.add_row("user-level DMA" if method != "kernel"
                      else "kernel syscalls", format_us(per_step, 1))
    print(table.render())

    nodes, _ = results["extshadow"]
    front = [round(c, 2) for c in nodes[0].cells[:8]]
    print(f"\nheat front after {STEPS} steps "
          f"(first cells of rank 0): {front}")
    user = results["extshadow"][1]
    kernel = results["kernel"][1]
    print(f"user-level halo exchange is {kernel / user:.1f}x faster "
          f"per step; in a real stencil run this is the whole "
          f"communication budget.")
    # Both transports compute the same physics.
    assert [round(c, 6) for n in results['extshadow'][0]
            for c in n.cells] == [round(c, 6)
                                  for n in results['kernel'][0]
                                  for c in n.cells]


if __name__ == "__main__":
    main()
