#!/usr/bin/env python3
"""Reproduce Table 1, and extend it to all ten initiation methods.

Measures mean initiation latency with the paper's methodology (§3.4):
repeated initiations to different addresses, warm steady state, no data
transfer in the measurement window.

Run:  python examples/method_comparison.py
"""

from repro.analysis.report import Table, format_us
from repro.analysis.trends import measure_initiation_us
from repro.core.methods import METHODS, TABLE1_METHODS

PAPER_US = {"kernel": 18.6, "extshadow": 1.1, "repeated5": 2.6,
            "keyed": 2.3}


def reproduce_table1() -> None:
    table = Table("Table 1: Comparison of DMA initiation algorithms",
                  ["DMA algorithm", "paper (us)", "measured (us)"])
    for method in TABLE1_METHODS:
        measured = measure_initiation_us(method, iterations=100)
        table.add_row(METHODS[method].title,
                      format_us(PAPER_US[method]),
                      format_us(measured, digits=2))
    print(table.render())
    print()


def extended_table() -> None:
    table = Table("All methods (including prior-work baselines)",
                  ["method", "paper section", "user accesses",
                   "kernel mod needed", "measured (us)"])
    for method in ("kernel", "shrimp1", "shrimp2", "flash", "pal",
                   "keyed", "extshadow", "repeated3", "repeated4",
                   "repeated5"):
        info = METHODS[method]
        measured = measure_initiation_us(method, iterations=50)
        table.add_row(info.title, info.section,
                      info.memory_accesses or "-",
                      "-" if method == "kernel" else
                      ("no" if info.kernel_free else "YES"),
                      format_us(measured, digits=2))
    print(table.render())


def main() -> None:
    reproduce_table1()
    extended_table()
    print("\nNote: SHRIMP-2 and FLASH are fast too -- their problem is "
          "the kernel modification they require, not their latency "
          "(see examples/multiprogramming_stress.py).")


if __name__ == "__main__":
    main()
