#!/usr/bin/env python3
"""User-level atomic operations (§3.5): a shared counter.

Two processes share one buffer and bump a counter in it with
``atomic_add`` issued *from user level* through the network interface's
atomic unit — then the same workload runs through the kernel baseline
for the cost comparison.

Run:  python examples/atomic_counters.py
"""

from repro.core.atomics import AtomicChannel
from repro.core.machine import MachineConfig, Workstation
from repro.hw.pagetable import Perm
from repro.units import to_us


def build(mode):
    ws = Workstation(MachineConfig(method="keyed", atomic_mode=mode))
    alice = ws.kernel.spawn("alice")
    bob = ws.kernel.spawn("bob")
    ws.kernel.enable_user_atomics(alice)
    ws.kernel.enable_user_atomics(bob)
    counter_buf = ws.kernel.alloc_buffer(alice, 8192, shadow=False)
    bob_vaddr = ws.kernel.share_buffer(alice, counter_buf, bob,
                                       perm=Perm.RW)
    return ws, alice, bob, counter_buf, bob_vaddr


def main() -> None:
    ws, alice, bob, counter_buf, bob_vaddr = build("extshadow")
    chan_a = AtomicChannel(ws, alice)
    chan_b = AtomicChannel(ws, bob)

    print("=== Shared counter via user-level atomic_add ===")
    increments = 0
    total_time = 0
    for round_index in range(10):
        for chan, vaddr in ((chan_a, counter_buf.vaddr),
                            (chan_b, bob_vaddr)):
            result = chan.atomic_add(vaddr, 1)
            assert result.ok
            increments += 1
            total_time += result.elapsed
    final = ws.ram.read_word(counter_buf.paddr)
    print(f"  {increments} increments from 2 processes -> "
          f"counter = {final}")
    print(f"  mean cost: {to_us(total_time) / increments:.2f} us "
          f"per atomic_add (user level)")
    assert final == increments

    # compare_and_swap as a tiny lock.
    print("\n=== A spinlock word via compare_and_swap ===")
    lock_vaddr = counter_buf.vaddr + 64
    got_it = chan_a.compare_and_swap(lock_vaddr, 0, alice.pid)
    blocked = chan_b.compare_and_swap(bob_vaddr + 64, 0, bob.pid)
    print(f"  alice CAS(0 -> {alice.pid}): old={got_it.old_value} "
          f"(acquired)")
    print(f"  bob   CAS(0 -> {bob.pid}): old={blocked.old_value} "
          f"(sees alice's pid, must wait)")
    released = chan_a.fetch_and_store(lock_vaddr, 0)
    print(f"  alice releases with fetch_and_store: old={released.old_value}")
    retry = chan_b.compare_and_swap(bob_vaddr + 64, 0, bob.pid)
    print(f"  bob retries: old={retry.old_value} (acquired)")

    # Kernel baseline for the same op.
    print("\n=== Kernel-initiated baseline ===")
    kernel_result = chan_a.atomic_add(counter_buf.vaddr, 0,
                                      via_kernel=True)
    user_result = chan_a.atomic_add(counter_buf.vaddr, 0)
    print(f"  kernel syscall: {kernel_result.elapsed_us:.2f} us, "
          f"user level: {user_result.elapsed_us:.2f} us  "
          f"({kernel_result.elapsed_us / user_result.elapsed_us:.1f}x)")


if __name__ == "__main__":
    main()
