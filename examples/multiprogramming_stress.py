#!/usr/bin/env python3
"""The kernel-modification ablation, narrated.

Four processes fire DMAs while a seeded scheduler preempts them between
arbitrary instructions.  SHRIMP-2 on a *stock* kernel mixes arguments
across processes; install its context-switch hook (the kernel
modification the paper objects to) and it behaves — while the paper's
key-based method is clean on the stock kernel from the start.

Run:  python examples/multiprogramming_stress.py
"""

from repro.analysis.report import Table
from repro.verify.stress import run_stress


def row_for(method, hooks, preempt_p=0.5):
    report = run_stress(method, n_processes=4, dmas_each=20,
                        preempt_p=preempt_p, with_hooks=hooks,
                        with_retry=(method == "repeated5"))
    return report


def main() -> None:
    table = Table(
        "Multiprogrammed stress: 4 processes x 20 DMAs, preempt p=0.5",
        ["method", "kernel modified?", "started", "corrupted",
         "misreported", "verdict"])
    cases = [
        ("shrimp2", False),
        ("shrimp2", True),
        ("flash", False),
        ("flash", True),
        ("keyed", False),
        ("extshadow", False),
        ("repeated5", False),
    ]
    for method, hooks in cases:
        report = row_for(method, hooks)
        needs_hook = method in ("shrimp2", "flash")
        modified = "yes (patched)" if hooks else "no (stock)"
        if not needs_hook:
            modified = "no (stock)"
        verdict = "CLEAN" if report.clean else "CORRUPTED"
        table.add_row(method, modified,
                      f"{report.started}/{report.attempts}",
                      report.corrupted, report.misreported, verdict)
    print(table.render())
    print(
        "\nThe baselines corrupt transfers exactly when their kernel "
        "patch is absent; the paper's methods never need one -- the "
        "headline claim, reproduced.")


if __name__ == "__main__":
    main()
