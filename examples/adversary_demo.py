#!/usr/bin/env python3
"""The paper's adversarial figures, replayed and then searched.

* Fig. 5 — the 3-instruction repeated-passing variant lets a malicious
  process transfer its own data into a victim's private page.
* Fig. 6 — the 4-instruction variant lets it steal the start and leave
  the victim convinced the DMA failed.
* Fig. 8 — the 5-instruction variant survives *every* interleaving,
  checked exhaustively.

Run:  python examples/adversary_demo.py
"""

from repro.verify.adversary import (
    fig5_scenario,
    fig6_scenario,
    fig8_scenario,
    pair_race_scenario,
)
from repro.verify.model_check import (
    check_scenario,
    make_harness,
    replay_interleaving,
)


def show_fig5() -> None:
    print("=== Fig. 5: attack on the 3-instruction variant ===")
    scenario, figure_order = fig5_scenario()
    print("interleaving (V = victim pid 1, M = malicious pid 2):")
    for access in figure_order:
        who = "V" if access.pid == 1 else "M"
        print(f"    {who}: {access.op.upper():5s} shadow({access.paddr:#x})")
    harness = make_harness(scenario)
    evidence = harness.replay(figure_order)
    for record in evidence.records:
        if record.ok:
            print(f"  -> engine started {record.psrc:#x} -> "
                  f"{record.pdst:#x}, issued by pid {record.issuer}")
            print("     the adversary's data (C) now sits in the "
                  "victim's private page (B)!")
    result = check_scenario(scenario)
    print(f"  exhaustive search: {result.summary()}\n")


def show_fig6() -> None:
    print("=== Fig. 6: attack on the 4-instruction variant ===")
    scenario, figure_order = fig6_scenario()
    violations = replay_interleaving(scenario, figure_order)
    for violation in violations:
        print(f"  violation [{violation.prop}]: {violation.detail}")
    result = check_scenario(scenario)
    print(f"  exhaustive search: {result.summary()}\n")


def show_fig8() -> None:
    print("=== Fig. 8 / §3.3.1: the 5-instruction variant holds ===")
    for scenario in (fig8_scenario(1), fig8_scenario(2),
                     fig8_scenario(4, accesses_per_adversary=1)):
        result = check_scenario(scenario)
        print(f"  {result.summary()}")
    print()


def show_proof() -> None:
    print("=== §3.3.1's hand proof, mechanized lemma by lemma ===")
    from repro.verify.proof import prove_fig8

    print(prove_fig8(fig8_scenario(2)).summary())
    print()


def show_races() -> None:
    print("=== Honest-race matrix (no kernel hooks) ===")
    for method in ("shrimp2", "flash", "keyed", "extshadow",
                   "repeated5"):
        result = check_scenario(pair_race_scenario(method))
        verdict = "SAFE" if result.safe else "RACY - needs kernel mod"
        print(f"  {method:10s}: {verdict:24s} "
              f"({result.violating_interleavings}/"
              f"{result.total_interleavings} bad orders)")


def main() -> None:
    show_fig5()
    show_fig6()
    show_fig8()
    show_proof()
    show_races()


if __name__ == "__main__":
    main()
