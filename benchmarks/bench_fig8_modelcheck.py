"""Figure 8 / §3.3.1 — exhaustive verification of the 5-instruction
variant, plus the same treatment for the other paper methods.

The paper proves by hand that no interleaving of the 5-access sequence
with adversarial accesses can start a mixed DMA; this benchmark checks
the claim mechanically over every interleaving of several adversary
configurations, and does the same for the key-based and extended-shadow
methods (two honest racers) and the SHRIMP-2 baseline (where the race is
*found*, as expected without its kernel hook).
"""

from __future__ import annotations

from repro.analysis.report import Table
from repro.verify.adversary import fig8_scenario, pair_race_scenario
from repro.verify.model_check import check_scenario


def test_fig8_exhaustive(record, benchmark):
    scenarios = [
        fig8_scenario(1),
        fig8_scenario(2),
        fig8_scenario(1, adversary_reads_source=False),
        fig8_scenario(4, accesses_per_adversary=1),
    ]

    def run():
        return [check_scenario(s) for s in scenarios]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table("Fig. 8 / §3.3.1: repeated-5 under interference",
                  ["scenario", "interleavings", "violations", "verdict"])
    for result in results:
        table.add_row(result.scenario, result.total_interleavings,
                      result.violating_interleavings,
                      "SAFE" if result.safe else "BROKEN")
    record("fig8_modelcheck", table.render())
    assert all(r.safe for r in results)
    assert sum(r.total_interleavings for r in results) > 10_000


def test_mechanized_proof(record, benchmark):
    """§3.3.1 lemma by lemma, over three adversary configurations."""
    from repro.verify.proof import prove_fig8

    scenarios = [fig8_scenario(1), fig8_scenario(2),
                 fig8_scenario(4, accesses_per_adversary=1)]

    def run():
        return [prove_fig8(s) for s in scenarios]

    reports = benchmark.pedantic(run, rounds=1, iterations=1)
    text = "\n\n".join(report.summary() for report in reports)
    record("fig8_proof", text)
    for report in reports:
        assert report.theorem_holds
        assert report.started > 0


def test_method_race_matrix(record, benchmark):
    methods = ["shrimp2", "flash", "keyed", "extshadow", "repeated5"]

    def run():
        return {m: check_scenario(pair_race_scenario(m)) for m in methods}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table(
        "Two honest processes racing (no kernel hooks installed)",
        ["method", "interleavings", "violating", "race-free"])
    for method in methods:
        result = results[method]
        table.add_row(method, result.total_interleavings,
                      result.violating_interleavings,
                      "yes" if result.safe else "NO")
    record("race_matrix", table.render())

    # The paper's thesis in one assert block.
    assert not results["shrimp2"].safe
    assert not results["flash"].safe
    assert results["keyed"].safe
    assert results["extshadow"].safe
    assert results["repeated5"].safe
