"""Footnote 6 ablation — memory barriers vs. write-buffer behaviour.

"In the Repeated Passing of Arguments method, a memory barrier was used
to make sure that repeated accesses to the same address were not
collapsed in (or serviced by) the write buffer."

Runs repeated-passing initiations across the write-buffer model matrix
(strong/relaxed x with/without MB) and reports the success rate and
whether any *phantom successes* (status looks fine, no transfer started)
occurred — the silent failure mode that makes the barriers mandatory.
"""

from __future__ import annotations

from repro.analysis.report import Table
from repro.core.api import DmaChannel
from repro.core.machine import MachineConfig, Workstation


def run_matrix_cell(relaxed: bool, with_mb: bool,
                    iterations: int = 20) -> dict:
    ws = Workstation(MachineConfig(method="repeated5",
                                   relaxed_write_buffer=relaxed))
    proc = ws.kernel.spawn()
    ws.kernel.enable_user_dma(proc)
    src = ws.kernel.alloc_buffer(proc, 16384)
    dst = ws.kernel.alloc_buffer(proc, 16384)
    chan = DmaChannel(ws, proc)
    looks_ok = 0
    phantom = 0
    for index in range(iterations):
        offset = index * 64
        before = len(ws.engine.started_transfers())
        result = chan.initiate(src.vaddr + offset, dst.vaddr + offset,
                               64, with_retry=False, with_mb=with_mb)
        really_started = len(ws.engine.started_transfers()) > before
        if result.ok:
            looks_ok += 1
            if not really_started:
                phantom += 1
        ws.drain()
    return {"looks_ok": looks_ok, "phantom": phantom,
            "iterations": iterations,
            "started": len(ws.engine.started_transfers())}


def test_footnote6_matrix(record, benchmark):
    cells = [("strong", False), ("strong", True),
             ("relaxed", False), ("relaxed", True)]

    def run():
        return {
            (buffer_model, with_mb): run_matrix_cell(
                buffer_model == "relaxed", with_mb)
            for buffer_model, with_mb in cells}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table(
        "Footnote 6: repeated-passing vs. write-buffer model",
        ["write buffer", "memory barriers", "status looked OK",
         "actually started", "phantom successes"])
    for (buffer_model, with_mb), cell in results.items():
        table.add_row(buffer_model, "yes" if with_mb else "no",
                      f"{cell['looks_ok']}/{cell['iterations']}",
                      cell["started"], cell["phantom"])
    record("footnote6", table.render())

    # Strong ordering: fine either way.
    assert results[("strong", False)]["started"] == 20
    assert results[("strong", True)]["started"] == 20
    # Relaxed without MBs: nothing ever starts, yet software sees
    # success — the dangerous case.
    assert results[("relaxed", False)]["started"] == 0
    assert results[("relaxed", False)]["phantom"] == 20
    # The barriers restore correctness.
    assert results[("relaxed", True)]["started"] == 20
    assert results[("relaxed", True)]["phantom"] == 0
