"""Initiation-latency distributions (stability of Table 1's means).

The paper reports means over 1,000 initiations.  This benchmark records
full distributions for each Table 1 method — min / p50 / p99 / max — and
asserts they are tight: in steady state (warm TLB, no contention) an
initiation's cost is essentially deterministic, so a mean is a faithful
summary.  The one systematic source of spread, cold TLB entries on the
first touch of each shadow page, is reported separately.
"""

from __future__ import annotations

from repro.analysis.report import Table, format_us
from repro.core.api import DmaChannel
from repro.core.machine import MachineConfig, Workstation
from repro.core.methods import TABLE1_METHODS
from repro.sim.stats import LatencyStat
from repro.units import to_us

SAMPLES = 200


def distribution(method: str) -> LatencyStat:
    ws = Workstation(MachineConfig(method=method))
    proc = ws.kernel.spawn()
    if method != "kernel":
        ws.kernel.enable_user_dma(proc)
    src = ws.kernel.alloc_buffer(proc, 16384,
                                 shadow=(method != "kernel"))
    dst = ws.kernel.alloc_buffer(proc, 16384,
                                 shadow=(method != "kernel"))
    if method == "shrimp1":
        ws.kernel.map_out(proc, src.vaddr, proc, dst.vaddr, 16384)
    chan = DmaChannel(ws, proc)
    chan.initiate(src.vaddr, dst.vaddr, 64)  # warm-up
    ws.drain()
    stat = LatencyStat(method, keep_samples=True)
    for index in range(SAMPLES):
        offset = (index % 128) * 64
        result = chan.initiate(src.vaddr + offset, dst.vaddr + offset,
                               64)
        assert result.ok
        stat.record(result.elapsed)
        ws.drain()
    return stat


def test_latency_distributions(record, benchmark):
    def run():
        return {m: distribution(m) for m in TABLE1_METHODS}

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table(
        f"Initiation latency distribution over {SAMPLES} samples (us)",
        ["method", "min", "p50", "p99", "max", "stddev"])
    for method in TABLE1_METHODS:
        stat = stats[method]
        table.add_row(method,
                      format_us(to_us(stat.min), 2),
                      format_us(to_us(stat.percentile(50)), 2),
                      format_us(to_us(stat.percentile(99)), 2),
                      format_us(to_us(stat.max), 2),
                      format_us(stat.stddev / 1e6, 3))
    record("latency_distribution", table.render())

    for method in TABLE1_METHODS:
        stat = stats[method]
        # Warm steady state: the spread is tiny relative to the mean.
        assert stat.max - stat.min <= 0.1 * stat.mean, method
        # And the median equals Table 1's mean story.
        assert stat.percentile(50) == stat.percentile(99)
