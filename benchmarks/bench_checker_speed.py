"""Checker speed: naive replay oracle vs prefix-sharing incremental DFS.

The incremental checker must (a) return bit-identical
:class:`~repro.verify.model_check.CheckResult` objects and (b) beat the
naive oracle by at least 3x on the Fig. 8 worst case (two 3-access
adversaries against the 5-instruction victim: 9240 interleavings).  The
parallel fan-out must match the serial results exactly while splitting
the large scenarios across workers.
"""

from __future__ import annotations

import time

from repro.analysis.report import Table
from repro.verify.adversary import builtin_scenarios, fig8_scenario
from repro.verify.incremental import CheckStats, check_scenario_incremental
from repro.verify.model_check import check_scenario
from repro.verify.parallel import ParallelChecker


def test_incremental_speedup_worst_case(record, benchmark):
    """Fig. 8 worst case: >= 3x over the naive oracle, same result."""
    scenario = fig8_scenario(2)

    t0 = time.perf_counter()
    naive = check_scenario(scenario)
    naive_s = time.perf_counter() - t0

    stats = CheckStats()
    run = lambda: check_scenario_incremental(scenario, stats=stats)
    incremental = benchmark.pedantic(run, rounds=1, iterations=1)
    t0 = time.perf_counter()
    check_scenario_incremental(scenario)
    inc_s = time.perf_counter() - t0

    speedup = naive_s / inc_s
    table = Table("Incremental checker vs naive oracle (Fig. 8, 2 adv)",
                  ["metric", "naive", "incremental"])
    table.add_row("wall seconds", f"{naive_s:.3f}", f"{inc_s:.3f}")
    table.add_row("orders/second",
                  f"{naive.total_interleavings / naive_s:.0f}",
                  f"{incremental.total_interleavings / inc_s:.0f}")
    table.add_row("accesses delivered", stats.naive_accesses,
                  stats.accesses_delivered)
    table.add_row("speedup", "1.0x", f"{speedup:.1f}x")
    record("checker_speed", table.render())

    assert incremental == naive
    assert stats.accesses_delivered < stats.naive_accesses
    assert speedup >= 3.0


def test_incremental_differential_all_builtins(record, benchmark):
    """Every built-in scenario: incremental == naive, bit for bit."""
    scenarios = builtin_scenarios()

    def run():
        return [(check_scenario(s), check_scenario_incremental(s))
                for s in scenarios]

    pairs = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table("Differential: naive oracle vs incremental checker",
                  ["scenario", "orders", "violating", "identical"])
    for scenario, (naive, inc) in zip(scenarios, pairs):
        table.add_row(scenario.name, naive.total_interleavings,
                      naive.violating_interleavings,
                      "yes" if naive == inc else "NO")
    record("checker_differential", table.render())
    assert all(naive == inc for naive, inc in pairs)


def test_parallel_fanout_matches_serial(record, benchmark):
    """The multiprocessing fan-out returns exactly the serial results."""
    scenarios = builtin_scenarios()
    serial = ParallelChecker(n_workers=1).check_many(scenarios)

    # Force >= 2 workers: even on a single-CPU box this exercises the
    # real pool and the branch-splitting path; only *correctness* is
    # asserted here (wall-clock scaling needs real cores).
    parallel = ParallelChecker(n_workers=max(2, ParallelChecker().n_workers),
                               split_threshold=2000)
    report = benchmark.pedantic(lambda: parallel.check_many(scenarios),
                                rounds=1, iterations=1)

    table = Table("Parallel fan-out (deterministic merge)",
                  ["metric", "value"])
    table.add_row("workers", report.n_workers)
    table.add_row("tasks", report.n_tasks)
    table.add_row("branch-split scenarios",
                  ", ".join(report.split_scenarios) or "none")
    table.add_row("identical to serial",
                  "yes" if report.results == serial.results else "NO")
    record("checker_parallel", table.render())

    assert report.results == serial.results
    assert report.n_tasks >= len(scenarios)
