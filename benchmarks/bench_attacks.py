"""Figures 5 and 6 — the attacks on the 3- and 4-instruction variants.

Regenerates each figure twice over:

* replays the figure's *exact* interleaving and reports what the engine
  did (Fig. 5: the adversary's C lands in the victim's B; Fig. 6: the
  victim is told FAILURE while its transfer ran);
* exhaustively searches **all** interleavings of the same streams and
  counts how many violate which property.
"""

from __future__ import annotations

from repro.analysis.report import Table
from repro.verify.adversary import fig5_scenario, fig6_scenario
from repro.verify.model_check import (
    check_scenario,
    make_harness,
    replay_interleaving,
)


def test_fig5_attack(record, benchmark):
    scenario, figure_order = fig5_scenario()

    def run():
        exact = replay_interleaving(scenario, figure_order)
        exhaustive = check_scenario(scenario)
        return exact, exhaustive

    exact, exhaustive = benchmark.pedantic(run, rounds=1, iterations=1)

    harness = make_harness(scenario)
    evidence = harness.replay(figure_order)
    started = [r for r in evidence.records if r.ok]

    table = Table("Fig. 5: attack on 3-instruction repeated passing",
                  ["observation", "value"])
    table.add_row("figure's interleaving starts a DMA", bool(started))
    table.add_row("transfer started",
                  f"{started[0].psrc:#x} -> {started[0].pdst:#x} "
                  f"(C -> B)" if started else "none")
    table.add_row("issuer of the start",
                  f"pid {started[0].issuer} (the adversary)"
                  if started else "-")
    table.add_row("properties violated (exact replay)",
                  ", ".join(sorted({v.prop for v in exact})))
    table.add_row("interleavings checked",
                  exhaustive.total_interleavings)
    table.add_row("interleavings with violations",
                  exhaustive.violating_interleavings)
    record("fig5_attack", table.render())

    assert started and started[0].issuer == 2
    assert exhaustive.attack_found


def test_fig6_attack(record, benchmark):
    scenario, figure_order = fig6_scenario()

    def run():
        exact = replay_interleaving(scenario, figure_order)
        exhaustive = check_scenario(scenario)
        return exact, exhaustive

    exact, exhaustive = benchmark.pedantic(run, rounds=1, iterations=1)

    harness = make_harness(scenario)
    evidence = harness.replay(figure_order)
    started = [r for r in evidence.records if r.ok]
    from repro.hw.dma.status import is_rejection

    victim_status = evidence.final_status.get(1)

    table = Table("Fig. 6: attack on 4-instruction repeated passing",
                  ["observation", "value"])
    table.add_row("the victim's transfer started", bool(started))
    table.add_row("start delivered to",
                  f"pid {started[0].issuer} (the adversary)"
                  if started else "-")
    table.add_row("victim's reported status",
                  "DMA_FAILURE (misinformed)"
                  if victim_status is not None
                  and is_rejection(victim_status) else victim_status)
    table.add_row("properties violated (exact replay)",
                  ", ".join(sorted({v.prop for v in exact})))
    table.add_row("interleavings checked",
                  exhaustive.total_interleavings)
    table.add_row("interleavings with violations",
                  exhaustive.violating_interleavings)
    record("fig6_attack", table.render())

    assert started and started[0].issuer == 2
    assert is_rejection(victim_status)
    assert exhaustive.attack_found
