"""Table 1 — Comparison of DMA initiation algorithms.

Reproduces the paper's only results table with the paper's own
methodology (§3.4): repeated initiations to different addresses, no data
transfer measured, mean reported.  Paper values (DEC Alpha 3000/300,
12.5 MHz TurboChannel):

    Kernel-level DMA            18.6 us
    Ext. Shadow Addressing       1.1 us
    Rep. Passing of Arguments    2.6 us
    Key-based DMA                2.3 us
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.analysis.report import Table, format_us
from repro.analysis.trends import measure_initiation_us
from repro.core.methods import MODERN_METHODS, TABLE1_METHODS

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

PAPER_US = {
    "kernel": 18.6,
    "extshadow": 1.1,
    "repeated5": 2.6,
    "keyed": 2.3,
}
TITLES = {
    "kernel": "Kernel-level DMA",
    "extshadow": "Ext. Shadow Addressing",
    "repeated5": "Rep. Passing of Arguments",
    "keyed": "Key-based DMA",
    "iommu": "IOMMU (IOVA translation)",
    "capio": "Capability-checked DMA",
}

#: The paper's own sample count.
ITERATIONS = 1000


@pytest.mark.parametrize("method", TABLE1_METHODS)
def test_table1_row(benchmark, method):
    """One Table 1 row: mean initiation latency of *method*."""
    result = benchmark.pedantic(
        lambda: measure_initiation_us(method, iterations=50),
        rounds=1, iterations=1)
    benchmark.extra_info["simulated_us"] = result
    benchmark.extra_info["paper_us"] = PAPER_US[method]
    assert result == pytest.approx(PAPER_US[method], rel=0.15)


def test_table1_full(record, benchmark):
    """The whole table, paper vs. measured, persisted to results/."""

    def run():
        return {method: measure_initiation_us(method,
                                              iterations=ITERATIONS // 10)
                for method in TABLE1_METHODS}

    measured = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table("Table 1: Comparison of DMA initiation algorithms",
                  ["DMA algorithm", "paper (us)", "measured (us)",
                   "ratio"])
    for method in TABLE1_METHODS:
        table.add_row(
            TITLES[method],
            format_us(PAPER_US[method]),
            format_us(measured[method], digits=2),
            f"{measured[method] / PAPER_US[method]:.2f}x")
    record("table1", table.render())

    # Shape assertions: ordering and the ~order-of-magnitude gap.
    assert (measured["extshadow"] < measured["keyed"]
            < measured["repeated5"] < measured["kernel"])
    for method in ("extshadow", "keyed", "repeated5"):
        assert measured["kernel"] / measured[method] > 6


def test_table1_extended_modern(record, benchmark):
    """Table 1 extended with the modern methods (IOMMU, capio).

    Same §3.4 methodology; the reference rows ride along so the table
    reads as one comparison.  Persists the machine-readable
    ``results/BENCH_table1.json`` that ``compare_bench.py`` gates CI on
    (simulated latencies are deterministic, so the gate's margin only
    absorbs deliberate cost-model recalibration, not runner noise).
    """
    methods = list(TABLE1_METHODS) + list(MODERN_METHODS)

    def run():
        return {method: measure_initiation_us(method,
                                              iterations=ITERATIONS // 10)
                for method in methods}

    measured = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table("Table 1 (extended): modern initiation methods",
                  ["DMA algorithm", "paper (us)", "measured (us)",
                   "accesses kernel-free"])
    for method in methods:
        paper = PAPER_US.get(method)
        table.add_row(
            TITLES[method],
            format_us(paper) if paper is not None else "--",
            format_us(measured[method], digits=2),
            "no" if method == "kernel" else "yes")
    record("table1_modern", table.render())
    RESULTS_DIR.mkdir(exist_ok=True)
    report = {
        "benchmark": "table1",
        "iterations": ITERATIONS // 10,
        "rows": {method: {"simulated_us": round(measured[method], 4),
                          "paper_us": PAPER_US.get(method)}
                 for method in methods},
    }
    (RESULTS_DIR / "BENCH_table1.json").write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n")

    # Shape: the IOMMU's two-access sequence prices like extended
    # shadow (translation is engine-side, off the user path); capio's
    # four accesses price like the keyed method; both keep the ~10x
    # kernel/user gap.
    assert measured["iommu"] == pytest.approx(measured["extshadow"],
                                              rel=0.10)
    assert measured["capio"] == pytest.approx(measured["keyed"], rel=0.15)
    for method in MODERN_METHODS:
        assert measured["kernel"] / measured[method] > 6
