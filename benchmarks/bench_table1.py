"""Table 1 — Comparison of DMA initiation algorithms.

Reproduces the paper's only results table with the paper's own
methodology (§3.4): repeated initiations to different addresses, no data
transfer measured, mean reported.  Paper values (DEC Alpha 3000/300,
12.5 MHz TurboChannel):

    Kernel-level DMA            18.6 us
    Ext. Shadow Addressing       1.1 us
    Rep. Passing of Arguments    2.6 us
    Key-based DMA                2.3 us
"""

from __future__ import annotations

import pytest

from repro.analysis.report import Table, format_us
from repro.analysis.trends import measure_initiation_us
from repro.core.methods import TABLE1_METHODS

PAPER_US = {
    "kernel": 18.6,
    "extshadow": 1.1,
    "repeated5": 2.6,
    "keyed": 2.3,
}
TITLES = {
    "kernel": "Kernel-level DMA",
    "extshadow": "Ext. Shadow Addressing",
    "repeated5": "Rep. Passing of Arguments",
    "keyed": "Key-based DMA",
}

#: The paper's own sample count.
ITERATIONS = 1000


@pytest.mark.parametrize("method", TABLE1_METHODS)
def test_table1_row(benchmark, method):
    """One Table 1 row: mean initiation latency of *method*."""
    result = benchmark.pedantic(
        lambda: measure_initiation_us(method, iterations=50),
        rounds=1, iterations=1)
    benchmark.extra_info["simulated_us"] = result
    benchmark.extra_info["paper_us"] = PAPER_US[method]
    assert result == pytest.approx(PAPER_US[method], rel=0.15)


def test_table1_full(record, benchmark):
    """The whole table, paper vs. measured, persisted to results/."""

    def run():
        return {method: measure_initiation_us(method,
                                              iterations=ITERATIONS // 10)
                for method in TABLE1_METHODS}

    measured = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table("Table 1: Comparison of DMA initiation algorithms",
                  ["DMA algorithm", "paper (us)", "measured (us)",
                   "ratio"])
    for method in TABLE1_METHODS:
        table.add_row(
            TITLES[method],
            format_us(PAPER_US[method]),
            format_us(measured[method], digits=2),
            f"{measured[method] / PAPER_US[method]:.2f}x")
    record("table1", table.render())

    # Shape assertions: ordering and the ~order-of-magnitude gap.
    assert (measured["extshadow"] < measured["keyed"]
            < measured["repeated5"] < measured["kernel"])
    for method in ("extshadow", "keyed", "repeated5"):
        assert measured["kernel"] / measured[method] > 6
