"""The messaging library — per-message cost, user level vs. kernel.

A system-level composite of everything the paper proposes: each message
is one payload DMA + one tail DMA (+ one credit DMA on the receive
side).  With user-level initiation that is ~3 shadow-access sequences;
with the kernel path it is three full Fig. 1 syscalls.  The benchmark
measures sustained per-message cost through a small ring and counts
syscalls to prove the data path is kernel-free.
"""

from __future__ import annotations

from repro.analysis.report import Table, format_us
from repro.core.machine import MachineConfig
from repro.msg import MessageChannel, RingLayout
from repro.net import GIGABIT, Cluster
from repro.units import to_us

N_MESSAGES = 30


def run_traffic(method: str) -> dict:
    cluster = Cluster(2, link_spec=GIGABIT,
                      config=MachineConfig(method=method))
    ws0, ws1 = cluster.nodes
    sender = ws0.kernel.spawn("sender")
    receiver = ws1.kernel.spawn("receiver")
    if method != "kernel":
        ws0.kernel.enable_user_dma(sender)
        ws1.kernel.enable_user_dma(receiver)
    channel = MessageChannel.create(
        ws0, sender, ws1, receiver,
        layout=RingLayout(n_slots=8, slot_size=256))
    channel.send(b"warm")
    channel.recv()
    syscalls_before = sum(ws.cpu.stats.counter("syscalls").value
                          for ws in cluster.nodes)
    start = cluster.sim.now
    delivered = 0
    for index in range(N_MESSAGES):
        while not channel.send(f"m{index}".encode()):
            delivered += len(channel.drain())
            cluster.run_until_quiet()
    delivered += len(channel.drain())
    cluster.run_until_quiet()
    elapsed_us = to_us(cluster.sim.now - start)
    syscalls = (sum(ws.cpu.stats.counter("syscalls").value
                    for ws in cluster.nodes) - syscalls_before)
    assert delivered == N_MESSAGES
    return {
        "per_message_us": elapsed_us / N_MESSAGES,
        "syscalls_per_message": syscalls / N_MESSAGES,
    }


def test_message_library(record, benchmark):
    def run():
        return {method: run_traffic(method)
                for method in ("extshadow", "keyed", "kernel")}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table(
        "Messaging library: sustained per-message cost (64 B ring slots)",
        ["transport", "us/message", "syscalls/message"])
    for method, row in results.items():
        table.add_row(method, format_us(row["per_message_us"], 1),
                      f"{row['syscalls_per_message']:.1f}")
    record("message_library", table.render())

    assert results["extshadow"]["syscalls_per_message"] == 0
    assert results["keyed"]["syscalls_per_message"] == 0
    assert results["kernel"]["syscalls_per_message"] >= 2
    assert (results["extshadow"]["per_message_us"] * 2
            < results["kernel"]["per_message_us"])
