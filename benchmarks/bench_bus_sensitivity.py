"""§3.4's remark — faster buses shrink user-level initiation.

"Our implementation is pessimistic, and user-level DMA can achieve quite
better performance in modern systems, that use faster buses.  The
TurboChannel bus that we used runs at 12.5 MHz, while recent buses, like
the PCI bus run at frequencies as high as 66 MHz."

Re-runs Table 1 under the PCI-33 and PCI-66 presets.  User-level rows
scale with the bus clock (they are almost pure bus time); the kernel row
barely moves (it is almost pure CPU/OS time) — which *widens* the gap on
modern hardware, exactly the paper's point.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import Table, format_us
from repro.analysis.trends import measure_initiation_us
from repro.core.methods import TABLE1_METHODS
from repro.core.timing import (
    ALPHA3000_TURBOCHANNEL,
    ALPHA_PCI_33,
    ALPHA_PCI_66,
)

PRESETS = [("TurboChannel 12.5", ALPHA3000_TURBOCHANNEL),
           ("PCI 33", ALPHA_PCI_33),
           ("PCI 66", ALPHA_PCI_66)]


def test_bus_sensitivity(record, benchmark):
    def run():
        return {
            preset_name: {
                method: measure_initiation_us(method, timing,
                                              iterations=30)
                for method in TABLE1_METHODS}
            for preset_name, timing in PRESETS}

    measured = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table("Initiation latency vs. I/O bus generation (us)",
                  ["method"] + [name for name, _ in PRESETS]
                  + ["kernel/user gap @66MHz"])
    for method in TABLE1_METHODS:
        row = [format_us(measured[name][method], 2)
               for name, _ in PRESETS]
        gap = (measured["PCI 66"]["kernel"]
               / measured["PCI 66"][method])
        table.add_row(method, *row,
                      f"{gap:.1f}x" if method != "kernel" else "-")
    record("bus_sensitivity", table.render())

    tc = measured["TurboChannel 12.5"]
    p66 = measured["PCI 66"]
    # User-level methods speed up with the bus...
    for method in ("extshadow", "keyed", "repeated5"):
        assert p66[method] < tc[method] / 2.5
    # ...the kernel path barely does...
    assert p66["kernel"] > tc["kernel"] * 0.85
    # ...so the kernel/user gap widens on PCI-66.
    assert (p66["kernel"] / p66["extshadow"]
            > tc["kernel"] / tc["extshadow"] * 2)


@pytest.mark.parametrize("method", ["extshadow", "keyed"])
def test_pci66_latency(benchmark, method):
    latency = benchmark.pedantic(
        lambda: measure_initiation_us(method, ALPHA_PCI_66,
                                      iterations=30),
        rounds=1, iterations=1)
    benchmark.extra_info["simulated_us"] = latency
    # Sub-microsecond initiation on a 66 MHz bus.
    assert latency < 0.6
