"""Initiation throughput under a realistic small-message workload.

How many DMAs per (simulated) second can one process launch under each
method, driving the small-message-heavy mix that motivates the paper?
The reciprocal of Table 1, workload-weighted — and the number a
message-passing library actually cares about.
"""

from __future__ import annotations

from repro.analysis.report import Table
from repro.core.api import DmaChannel
from repro.core.machine import MachineConfig, Workstation
from repro.units import to_seconds
from repro.workloads.generators import RequestGenerator
from repro.workloads.patterns import SMALL_MESSAGE_MIX

METHODS = ["kernel", "extshadow", "keyed", "repeated5"]
N_REQUESTS = 60
BUF = 64 * 1024


def initiations_per_second(method: str) -> float:
    ws = Workstation(MachineConfig(method=method, ram_size=1 << 24))
    proc = ws.kernel.spawn()
    if method != "kernel":
        ws.kernel.enable_user_dma(proc)
    src = ws.kernel.alloc_buffer(proc, BUF, shadow=(method != "kernel"))
    dst = ws.kernel.alloc_buffer(proc, BUF, shadow=(method != "kernel"))
    chan = DmaChannel(ws, proc)
    requests = RequestGenerator(BUF, mix=SMALL_MESSAGE_MIX,
                                seed=11).requests(N_REQUESTS)
    chan.initiate(src.vaddr, dst.vaddr, 64)  # warm-up
    ws.drain()
    start = ws.sim.now
    launched = 0
    for request in requests:
        result = chan.initiate(src.vaddr + request.src_offset,
                               dst.vaddr + request.dst_offset,
                               request.size)
        if result.ok:
            launched += 1
    elapsed = to_seconds(ws.sim.now - start)
    ws.drain()
    assert launched == N_REQUESTS
    return launched / elapsed


def test_initiation_throughput(record, benchmark):
    def run():
        return {m: initiations_per_second(m) for m in METHODS}

    rates = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table(
        "Initiation throughput, small-message workload "
        "(simulated initiations/second)",
        ["method", "initiations/s", "vs kernel"])
    for method in METHODS:
        table.add_row(method, f"{rates[method]:,.0f}",
                      f"{rates[method] / rates['kernel']:.1f}x")
    record("throughput", table.render())

    assert rates["extshadow"] > rates["keyed"] > rates["kernel"]
    assert rates["extshadow"] / rates["kernel"] > 8
