"""§3.5 — user-level atomic operations.

"Initiating atomic operations from inside the operating system kernel
would result in significant overhead [...] Thus, atomic operations will
benefit significantly if initiated from user-space."

Measures atomic_add / fetch_and_store / compare_and_swap through the
kernel baseline and through both user-level adaptations (keyed and
extended-shadow), reproducing the same order-of-magnitude gap as DMA
initiation.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import Table, format_us
from repro.core.atomics import AtomicChannel
from repro.core.machine import MachineConfig, Workstation
from repro.units import to_us

OPS = ["atomic_add", "fetch_and_store", "compare_and_swap"]


def measure(mode: str, op: str, via_kernel: bool,
            iterations: int = 30) -> float:
    ws = Workstation(MachineConfig(method="keyed", atomic_mode=mode))
    proc = ws.kernel.spawn()
    ws.kernel.enable_user_atomics(proc)
    buf = ws.kernel.alloc_buffer(proc, 8192, shadow=False)
    chan = AtomicChannel(ws, proc)

    def issue():
        if op == "atomic_add":
            return chan.atomic_add(buf.vaddr, 1, via_kernel=via_kernel)
        if op == "fetch_and_store":
            return chan.fetch_and_store(buf.vaddr, 7,
                                        via_kernel=via_kernel)
        return chan.compare_and_swap(buf.vaddr, 0, 1,
                                     via_kernel=via_kernel)

    issue()  # warm TLB
    total = 0
    for _ in range(iterations):
        result = issue()
        assert result.ok
        total += result.elapsed
    return to_us(total) / iterations


def test_atomic_ops_table(record, benchmark):
    def run():
        out = {}
        for op in OPS:
            out[op] = {
                "kernel": measure("keyed", op, via_kernel=True),
                "keyed": measure("keyed", op, via_kernel=False),
                "extshadow": measure("extshadow", op, via_kernel=False),
            }
        return out

    measured = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table("§3.5: atomic-operation initiation latency (us)",
                  ["operation", "kernel", "key-based", "ext-shadow",
                   "best speedup"])
    for op in OPS:
        row = measured[op]
        best = min(row["keyed"], row["extshadow"])
        table.add_row(op, format_us(row["kernel"], 2),
                      format_us(row["keyed"], 2),
                      format_us(row["extshadow"], 2),
                      f"{row['kernel'] / best:.1f}x")
    record("atomics", table.render())

    for op in OPS:
        row = measured[op]
        # User-level initiation is several times cheaper.
        assert row["kernel"] / row["keyed"] > 4
        assert row["kernel"] / row["extshadow"] > 4
        # Ext-shadow needs fewer accesses than keyed.
        assert row["extshadow"] < row["keyed"]


@pytest.mark.parametrize("mode", ["keyed", "extshadow"])
def test_user_atomic_add_latency(benchmark, mode):
    latency = benchmark.pedantic(
        lambda: measure(mode, "atomic_add", via_kernel=False,
                        iterations=20),
        rounds=1, iterations=1)
    benchmark.extra_info["simulated_us"] = latency
    assert latency < 3.0
