"""Machine-readable checker benchmark: naive vs incremental vs parallel.

Times the naive replay oracle against the prefix-sharing incremental
checker on the built-in scenarios, asserts their results are identical,
measures the parallel fan-out, and writes everything as one JSON file
(``benchmarks/results/BENCH_checker.json`` by default) so CI can track
orders-per-second without parsing tables.

Run from the repo root::

    PYTHONPATH=src python benchmarks/perf_report.py            # full
    PYTHONPATH=src python benchmarks/perf_report.py --quick    # CI smoke

``--no-incremental`` times only the naive oracle (mode "oracle" in the
JSON) — useful to sanity-check the baseline on a new machine.

``--profile`` runs one extra (untimed) incremental pass per scenario
with a :class:`repro.obs.profile.PhaseProfiler` attached and adds the
per-phase wall-time breakdown (snapshot / restore / deliver / leaf,
plus expansion and transposition-hit counts) to each scenario's JSON
record.  The timed passes stay unprofiled so the numbers are clean.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import statistics
import sys
import time
from typing import Callable, List, Optional, Tuple

if __package__ in (None, ""):  # `python benchmarks/perf_report.py`
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent
                           / "src"))

from repro.obs.profile import PhaseProfiler
from repro.verify.adversary import builtin_scenarios, fig8_scenario
from repro.verify.incremental import CheckStats, check_scenario_incremental
from repro.verify.model_check import CheckResult, Scenario, check_scenario
from repro.verify.parallel import ParallelChecker

DEFAULT_OUTPUT = (pathlib.Path(__file__).resolve().parent
                  / "results" / "BENCH_checker.json")

#: The Fig. 8 worst case (9240 interleavings): the acceptance target is
#: >= 3x single-process speedup here.
WORST_CASE_NAME = fig8_scenario(2).name


def _time(fn: Callable[[], CheckResult],
          repeats: int) -> Tuple[float, CheckResult]:
    """Median-of-*repeats* wall time for *fn* plus its (last) result.

    The median (rather than best-of) keeps sub-millisecond scenarios
    from reporting a lucky outlier as the scenario's throughput, so
    BENCH_checker.json numbers are stable across runs.
    """
    times: List[float] = []
    result: Optional[CheckResult] = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        times.append(time.perf_counter() - t0)
    assert result is not None
    return statistics.median(times), result


def bench_scenario(scenario: Scenario, repeats: int,
                   incremental: bool = True,
                   profile: bool = False) -> dict:
    """Benchmark one scenario; returns its JSON record."""
    naive_s, naive = _time(lambda: check_scenario(scenario), repeats)
    orders = naive.total_interleavings
    entry = {
        "name": scenario.name,
        "orders": orders,
        "naive": {
            "wall_s": round(naive_s, 6),
            "orders_per_s": round(orders / naive_s, 1) if naive_s else None,
        },
    }
    if not incremental:
        return entry
    stats = CheckStats()

    def run() -> CheckResult:
        nonlocal stats
        stats = CheckStats()
        return check_scenario_incremental(scenario, stats=stats)

    inc_s, inc = _time(run, repeats)
    entry["incremental"] = {
        "wall_s": round(inc_s, 6),
        "orders_per_s": round(orders / inc_s, 1) if inc_s else None,
        "accesses_delivered": stats.accesses_delivered,
        "naive_accesses": stats.naive_accesses,
        "accesses_saved": stats.accesses_saved,
        "delivery_ratio": round(stats.delivery_ratio, 4),
        "transposition_hits": stats.transposition_hits,
        "transposition_entries": stats.transposition_entries,
        "journal_entries_replayed": stats.journal_entries_replayed,
        "dirty_pages": stats.dirty_pages,
        "batched_deliveries": stats.batched_deliveries,
    }
    entry["speedup"] = round(naive_s / inc_s, 2) if inc_s else None
    entry["identical"] = inc == naive
    if profile:
        # Separate untimed pass so profiling never skews the timings.
        profiler = PhaseProfiler()
        check_scenario_incremental(scenario, profiler=profiler)
        entry["profile"] = profiler.report()
    return entry


def bench_parallel(scenarios: List[Scenario], workers: int,
                   repeats: int, incremental: bool) -> dict:
    """Time the fan-out over *scenarios* against the serial equivalent."""
    serial = ParallelChecker(n_workers=1, incremental=incremental)
    parallel = ParallelChecker(n_workers=workers, incremental=incremental)
    serial_s, _ = _time(
        lambda: serial.check_many(scenarios).results[0], repeats)
    report = None

    def run() -> CheckResult:
        nonlocal report
        report = parallel.check_many(scenarios)
        return report.results[0]

    parallel_s, _ = _time(run, repeats)
    serial_results = serial.check_many(scenarios).results
    assert report is not None
    return {
        "workers": report.n_workers,
        "n_tasks": report.n_tasks,
        "split_scenarios": report.split_scenarios,
        "serial_wall_s": round(serial_s, 6),
        "parallel_wall_s": round(parallel_s, 6),
        "speedup": round(serial_s / parallel_s, 2) if parallel_s else None,
        "identical": report.results == serial_results,
    }


def build_report(quick: bool = False, workers: Optional[int] = None,
                 incremental: bool = True,
                 repeats: Optional[int] = None,
                 profile: bool = False) -> dict:
    """Run the full benchmark and return the JSON-ready report dict."""
    if repeats is None:
        repeats = 1 if quick else 3
    scenarios = builtin_scenarios()
    if quick:
        wanted = {"fig5-repeated3", "fig6-repeated4", WORST_CASE_NAME,
                  "pair-race-keyed"}
        scenarios = [s for s in scenarios if s.name in wanted]
    entries = [bench_scenario(s, repeats, incremental=incremental,
                              profile=profile and incremental)
               for s in scenarios]

    report = {
        "benchmark": "checker_speed",
        "generated_by": "benchmarks/perf_report.py",
        "mode": "incremental" if incremental else "oracle",
        "quick": quick,
        "profiled": bool(profile and incremental),
        "python": sys.version.split()[0],
        "scenarios": entries,
    }
    if incremental:
        worst = next((e for e in entries if e["name"] == WORST_CASE_NAME),
                     None)
        if worst is not None:
            report["worst_case"] = {
                "name": worst["name"],
                "orders": worst["orders"],
                "speedup": worst["speedup"],
                "target_speedup": 3.0,
                "meets_target": (worst["speedup"] or 0) >= 3.0,
            }
        report["all_identical"] = all(e["identical"] for e in entries)
    fanout = [s for s in scenarios
              if s.name.startswith(("fig8", "pair-race"))] or scenarios
    report["parallel"] = bench_parallel(
        fanout, workers or ParallelChecker().n_workers,
        repeats, incremental)
    return report


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark the interleaving checkers; emit JSON.")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: fewer scenarios, one round")
    parser.add_argument("--output", type=pathlib.Path,
                        default=DEFAULT_OUTPUT,
                        help=f"output path (default {DEFAULT_OUTPUT})")
    parser.add_argument("--workers", type=int, default=None,
                        help="parallel fan-out pool size (default: auto)")
    parser.add_argument("--no-incremental", action="store_true",
                        help="time only the naive oracle")
    parser.add_argument("--repeat", "--repeats", dest="repeat",
                        type=int, default=None,
                        help="median-of-N rounds per scenario (default: "
                             "1 in --quick mode, 3 otherwise)")
    parser.add_argument("--profile", action="store_true",
                        help="add per-phase wall-time breakdowns "
                             "(snapshot/restore/deliver/leaf) to the JSON")
    args = parser.parse_args(argv)
    if args.workers is not None and args.workers < 1:
        parser.error(f"--workers must be >= 1, got {args.workers}")
    if args.repeat is not None and args.repeat < 1:
        parser.error(f"--repeat must be >= 1, got {args.repeat}")

    report = build_report(quick=args.quick, workers=args.workers,
                          incremental=not args.no_incremental,
                          repeats=args.repeat, profile=args.profile)
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(report, indent=2) + "\n")

    for entry in report["scenarios"]:
        line = (f"{entry['name']:34s} {entry['orders']:7d} orders  "
                f"naive {entry['naive']['orders_per_s']:>10} ord/s")
        if "incremental" in entry:
            line += (f"  incremental {entry['incremental']['orders_per_s']:>10}"
                     f" ord/s  {entry['speedup']:>6}x"
                     f"  identical={entry['identical']}")
        print(line)
        if "profile" in entry:
            detail = ", ".join(
                f"{name} {info['seconds']:.3f}s/{info['count']}"
                for name, info in entry["profile"].items())
            print(f"{'':34s} profile: {detail}")
    par = report["parallel"]
    print(f"parallel fan-out: {par['workers']} workers, {par['n_tasks']} "
          f"tasks (split: {', '.join(par['split_scenarios']) or 'none'}), "
          f"{par['speedup']}x vs serial, identical={par['identical']}")
    if "worst_case" in report:
        wc = report["worst_case"]
        print(f"worst case {wc['name']}: {wc['speedup']}x "
              f"(target >= {wc['target_speedup']}x, "
              f"{'MET' if wc['meets_target'] else 'MISSED'})")
    print(f"wrote {args.output}")

    ok = report.get("all_identical", True) and report["parallel"]["identical"]
    if "worst_case" in report:
        ok = ok and report["worst_case"]["meets_target"]
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
