"""Fault-injection benchmark: recovery latency, retries, goodput.

Drives the hardened DMA path (:meth:`repro.core.api.DmaChannel.
dma_reliable`) on a page-bounded workstation while an
:class:`~repro.faults.injector.Injector` applies Bernoulli fault plans
of increasing rate, and records per method and rate:

* success rate (operations that ultimately moved the right bytes);
* recovery: how many successes needed at least one retry or the kernel
  fallback, and the mean/max recovery latency in simulated µs;
* retry / completion-timeout / kernel-fallback counts;
* goodput: payload bytes landed per simulated second, versus the
  fault-free baseline of the same method.

Everything is written as one JSON file
(``benchmarks/results/BENCH_faults.json`` by default) so CI can track
fault-tolerance without parsing tables.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_faults.py           # full
    PYTHONPATH=src python benchmarks/bench_faults.py --quick   # CI smoke
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import List, Optional

if __package__ in (None, ""):  # `python benchmarks/bench_faults.py`
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent
                           / "src"))

from repro.core.api import DmaChannel
from repro.core.machine import MachineConfig, Workstation
from repro.faults.injector import Injector
from repro.faults.plan import bernoulli_plan
from repro.faults.retry import RetryPolicy
from repro.units import to_us, us

DEFAULT_OUTPUT = (pathlib.Path(__file__).resolve().parent
                  / "results" / "BENCH_faults.json")

METHODS = ("keyed", "extshadow", "repeated5", "pal")
RATES = (0.0, 0.02, 0.05, 0.1, 0.2)
QUICK_METHODS = ("keyed", "extshadow")
QUICK_RATES = (0.0, 0.05, 0.2)

#: Tighter-than-default policy so benchmark runs stay short: the
#: completion timeout still comfortably exceeds a 4 KiB transfer
#: (~80 µs at 400 Mb/s) and the per-op backoff stays in the µs range.
BENCH_POLICY = RetryPolicy(max_attempts=4, base_backoff=us(2),
                           completion_timeout=us(500))

TRANSFER_BYTES = 4096


def bench_cell(method: str, rate: float, ops: int, seed: int) -> dict:
    """One (method, fault-rate) cell of the benchmark matrix."""
    ws = Workstation(MachineConfig(method=method, page_bounded=True,
                                   seed=seed))
    proc = ws.kernel.spawn("bench")
    ws.kernel.enable_user_dma(proc)
    src = ws.kernel.alloc_buffer(proc, 8192)
    dst = ws.kernel.alloc_buffer(proc, 8192)
    ws.ram.write(src.paddr, bytes(range(256)) * (TRANSFER_BYTES // 256))
    expected = ws.ram.read(src.paddr, TRANSFER_BYTES)
    chan = DmaChannel(ws, proc)

    injector = None
    if rate > 0.0:
        plan = bernoulli_plan(rate, seed=seed)
        injector = Injector(plan, ws.sim, trace=ws.trace).attach(ws)

    successes = recovered = 0
    recovery_us: List[float] = []
    t0 = ws.sim.now
    for _ in range(ops):
        ws.ram.write(dst.paddr, b"\0" * TRANSFER_BYTES)
        result = chan.dma_reliable(src.vaddr, dst.vaddr, TRANSFER_BYTES,
                                   policy=BENCH_POLICY)
        landed = ws.ram.read(dst.paddr, TRANSFER_BYTES) == expected
        if result.ok and landed:
            successes += 1
            if result.recovered:
                recovered += 1
                recovery_us.append(to_us(result.recovery_time))
    elapsed = ws.sim.now - t0
    if injector is not None:
        injector.detach()

    stats = ws.stats
    goodput = (successes * TRANSFER_BYTES / (elapsed / 1e12)
               if elapsed else 0.0)
    return {
        "method": method,
        "fault_rate": rate,
        "ops": ops,
        "successes": successes,
        "success_rate": round(successes / ops, 4) if ops else None,
        "recovered": recovered,
        "mean_recovery_us": (round(sum(recovery_us) / len(recovery_us), 3)
                             if recovery_us else 0.0),
        "max_recovery_us": (round(max(recovery_us), 3)
                            if recovery_us else 0.0),
        "retries": stats.counter("dma.retries").value,
        "completion_timeouts":
            stats.counter("dma.completion_timeouts").value,
        "kernel_fallbacks": stats.counter("dma.kernel_fallbacks").value,
        "retry_exhausted": stats.counter("dma.retry_exhausted").value,
        "faults_injected": (injector.plan.total_fired
                            if injector is not None else 0),
        "goodput_mbytes_per_s": round(goodput / 1e6, 3),
    }


def build_report(quick: bool = False, ops: Optional[int] = None,
                 seed: int = 7) -> dict:
    """Run the whole matrix and return the JSON-ready report dict."""
    methods = QUICK_METHODS if quick else METHODS
    rates = QUICK_RATES if quick else RATES
    n_ops = ops if ops is not None else (20 if quick else 100)
    cells = [bench_cell(method, rate, n_ops, seed)
             for method in methods for rate in rates]

    baselines = {c["method"]: c["goodput_mbytes_per_s"]
                 for c in cells if c["fault_rate"] == 0.0}
    for cell in cells:
        base = baselines.get(cell["method"])
        cell["goodput_vs_faultfree"] = (
            round(cell["goodput_mbytes_per_s"] / base, 4)
            if base else None)

    return {
        "benchmark": "fault_recovery",
        "generated_by": "benchmarks/bench_faults.py",
        "quick": quick,
        "python": sys.version.split()[0],
        "seed": seed,
        "transfer_bytes": TRANSFER_BYTES,
        "policy": {
            "max_attempts": BENCH_POLICY.max_attempts,
            "base_backoff_us": to_us(BENCH_POLICY.base_backoff),
            "completion_timeout_us": to_us(BENCH_POLICY.completion_timeout),
        },
        "cells": cells,
        "all_recovered": all(c["success_rate"] == 1.0 for c in cells),
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark DMA fault recovery; emit JSON.")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: fewer methods/rates/ops")
    parser.add_argument("--ops", type=int, default=None,
                        help="operations per cell (default 100, quick 20)")
    parser.add_argument("--seed", type=int, default=7,
                        help="fault-plan and machine seed")
    parser.add_argument("--output", type=pathlib.Path,
                        default=DEFAULT_OUTPUT,
                        help=f"output path (default {DEFAULT_OUTPUT})")
    args = parser.parse_args(argv)
    if args.ops is not None and args.ops < 1:
        parser.error(f"--ops must be >= 1, got {args.ops}")

    report = build_report(quick=args.quick, ops=args.ops, seed=args.seed)
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(report, indent=2) + "\n")

    for cell in report["cells"]:
        print(f"{cell['method']:10s} rate {cell['fault_rate']:<5} "
              f"ok {cell['successes']:>3}/{cell['ops']:<3} "
              f"retries {cell['retries']:>3} "
              f"fallbacks {cell['kernel_fallbacks']:>2} "
              f"mean-recovery {cell['mean_recovery_us']:>9.3f} us "
              f"goodput {cell['goodput_mbytes_per_s']:>8.3f} MB/s "
              f"({cell['goodput_vs_faultfree']})")
    print(f"all operations recovered: {report['all_recovered']}")
    print(f"wrote {args.output}")
    return 0 if report["all_recovered"] else 1


if __name__ == "__main__":
    sys.exit(main())
