"""The introduction's trend claim: initiation overhead vs. network speed.

"The operating system overhead keeps getting an ever-increasing
percentage of the DMA transfer time [...] Soon, the operating system
overhead will dominate the DMA transfer, making the necessity of
user-level DMA more important than ever."

Two regenerated series:

* the **crossover size** — the message size below which starting the DMA
  costs more than wiring it — per (method, link generation);
* the **overhead fraction** of end-to-end time across message sizes.
"""

from __future__ import annotations

from repro.analysis.report import Table, format_us
from repro.analysis.trends import (
    crossover_table,
    measure_initiation_us,
    overhead_sweep,
)
from repro.net.link import ATM_155, ATM_622, GIGABIT

LINKS = [ATM_155, ATM_622, GIGABIT]
SIZES = [64, 256, 1024, 4096, 16384, 65536]


def measured_initiations():
    return {
        "kernel": measure_initiation_us("kernel", iterations=20),
        "extshadow": measure_initiation_us("extshadow", iterations=20),
        "keyed": measure_initiation_us("keyed", iterations=20),
    }


def test_crossover_sizes(record, benchmark):
    def run():
        init = measured_initiations()
        return init, crossover_table(list(init), LINKS,
                                     initiation_us=init)

    init, rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table(
        "Crossover: message size below which initiation dominates",
        ["method", "initiation (us)", "ATM-155", "ATM-622", "Gigabit"])
    for method in init:
        by_link = {r.link: r.crossover_bytes for r in rows
                   if r.method == method}
        table.add_row(method, format_us(init[method], 2),
                      f"{by_link['atm-155']} B",
                      f"{by_link['atm-622']} B",
                      f"{by_link['gigabit']} B")
    record("crossover", table.render())

    kernel = {r.link: r.crossover_bytes for r in rows
              if r.method == "kernel"}
    user = {r.link: r.crossover_bytes for r in rows
            if r.method == "extshadow"}
    # Kernel initiation dominates an ever-growing size range as links
    # get faster; user-level initiation never dominates at all.
    assert kernel["atm-155"] < kernel["atm-622"] < kernel["gigabit"]
    assert kernel["gigabit"] > 1000
    assert all(size == 0 for size in user.values())


def test_overhead_fraction_series(record, benchmark):
    def run():
        init = measured_initiations()
        return init, overhead_sweep(["kernel", "extshadow"], LINKS,
                                    SIZES, initiation_us=init)

    init, points = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table(
        "Initiation share of end-to-end message time (%)",
        ["method", "link"] + [f"{s} B" for s in SIZES])
    for method in ("kernel", "extshadow"):
        for link in LINKS:
            row = [p for p in points
                   if p.method == method and p.link == link.name]
            row.sort(key=lambda p: p.size)
            table.add_row(method, link.name,
                          *(f"{p.overhead_fraction * 100:.0f}" for p in row))
    record("overhead_fraction", table.render())

    def fraction(method, link, size):
        return next(p.overhead_fraction for p in points
                    if p.method == method and p.link == link
                    and p.size == size)

    # The motivating regime: small messages on fast links are dominated
    # by kernel initiation but barely notice user-level initiation.
    assert fraction("kernel", "gigabit", 64) > 0.7
    assert fraction("extshadow", "gigabit", 64) < 0.3
    # The gap *widens* as networks speed up (the paper's trend).
    assert (fraction("kernel", "gigabit", 4096)
            > fraction("kernel", "atm-155", 4096))
