"""The introduction's decade-scale trend, regenerated.

"Operating Systems do not get faster as fast as hardware does [...] At
the same time, we witness an impressive improvement in network
throughput [...] Soon, the operating system overhead will dominate the
DMA transfer."

The historical-generations model scales CPUs, buses, networks and OS
cycle counts along their early-90s trajectories and evaluates, for each
generation, kernel-initiation time against the wire time of small
messages — producing the curve the paper argues from, plus the year the
kernel path starts to dominate at each message size.
"""

from __future__ import annotations

from repro.analysis.generations import (
    HISTORICAL_GENERATIONS,
    domination_year,
    generation_series,
)
from repro.analysis.report import Table, format_us

SIZES = [256, 1024, 4096]


def test_generations_trend(record, benchmark):
    def run():
        return {size: generation_series(size) for size in SIZES}

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table(
        "Kernel initiation as a fraction of wire time, by generation",
        ["year", "CPU MHz", "LAN Mb/s", "kernel init (us)"]
        + [f"{s} B" for s in SIZES])
    for index, gen in enumerate(HISTORICAL_GENERATIONS):
        point = series[SIZES[0]][index]
        table.add_row(gen.year, f"{gen.cpu_mhz:.0f}",
                      f"{gen.network_mbps:.0f}",
                      format_us(point.kernel_initiation_us, 1),
                      *(f"{series[s][index].kernel_ratio:.2f}"
                        for s in SIZES))
    dominate = {s: domination_year(s) for s in SIZES}
    table.add_row("dominates from", "", "", "",
                  *(str(dominate[s]) if dominate[s] > 0 else "never"
                    for s in SIZES))
    record("generations", table.render())

    # The curve rises for every size...
    for size in SIZES:
        first, last = series[size][0], series[size][-1]
        assert last.kernel_ratio > first.kernel_ratio
        # ...while the user-level curve never comes close to dominating
        # (peak ~0.12 for 256 B messages on the 1997 machine).
        assert all(p.user_ratio < 0.15 for p in series[size])
    # Small messages were already dominated in the paper's day.
    assert dominate[256] <= 1995
    assert dominate[1024] <= 1999
