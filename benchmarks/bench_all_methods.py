"""Extension of Table 1: every initiation method the paper discusses.

Adds the prior-work baselines (SHRIMP-1/2, FLASH) and the PAL method plus
the insecure 3/4-instruction repeated-passing variants, so the whole
design space from §2-§3 sits in one table.  The baselines' latencies are
comparable to the paper's methods — their problem is the kernel
modification, not speed — while SHRIMP-1's single atomic access is the
cheapest initiation of all (and the least general).
"""

from __future__ import annotations

import pytest

from repro.analysis.report import Table, format_us
from repro.analysis.trends import measure_initiation_us
from repro.core.methods import METHODS

ALL = ["kernel", "shrimp1", "shrimp2", "flash", "pal", "keyed",
       "extshadow", "repeated3", "repeated4", "repeated5"]


@pytest.mark.parametrize("method", ALL)
def test_method_initiation_latency(benchmark, method):
    latency = benchmark.pedantic(
        lambda: measure_initiation_us(method, iterations=30),
        rounds=1, iterations=1)
    benchmark.extra_info["simulated_us"] = latency
    assert latency > 0


def test_all_methods_table(record, benchmark):
    def run():
        return {m: measure_initiation_us(m, iterations=50) for m in ALL}

    measured = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table(
        "All initiation methods (extension of Table 1)",
        ["method", "section", "accesses", "kernel-free", "measured (us)"])
    for method in ALL:
        info = METHODS[method]
        table.add_row(info.title, info.section,
                      info.memory_accesses or "-",
                      "yes" if info.kernel_free else "NO",
                      format_us(measured[method], digits=2))
    record("all_methods", table.render())

    # Every user-level method beats the kernel path by a lot.
    for method in ALL:
        if method != "kernel":
            assert measured[method] * 5 < measured["kernel"]
    # More uncached accesses -> more time, within the user-level group.
    assert measured["shrimp1"] < measured["extshadow"]
    assert measured["extshadow"] < measured["keyed"]
    assert measured["keyed"] < measured["repeated5"]
