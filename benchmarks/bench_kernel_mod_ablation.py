"""Ablation — what the SHRIMP-2/FLASH kernel modifications actually buy.

The paper's whole case rests on this: the prior user-level schemes are
only safe *because* they patch the context-switch handler.  This
benchmark runs a multiprogrammed DMA stress workload over a sweep of
preemption pressures, with the hooks installed and without, and audits
every transfer the engine started.  The paper's own methods run the same
gauntlet on a stock kernel.
"""

from __future__ import annotations

from repro.analysis.report import Table
from repro.verify.stress import run_stress

PREEMPT_SWEEP = [0.1, 0.3, 0.6]


def test_kernel_mod_ablation(record, benchmark):
    def run():
        rows = []
        for method, hooks in (("shrimp2", True), ("shrimp2", False),
                              ("flash", True), ("flash", False)):
            for p in PREEMPT_SWEEP:
                report = run_stress(method, n_processes=4, dmas_each=20,
                                    preempt_p=p, with_hooks=hooks)
                rows.append((method, hooks, p, report))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table(
        "Kernel-modification ablation: corrupted transfers / attempts",
        ["method", "hook installed", "preempt p", "started",
         "corrupted", "misreported"])
    for method, hooks, p, report in rows:
        table.add_row(method, "yes" if hooks else "NO", p,
                      f"{report.started}/{report.attempts}",
                      report.corrupted, report.misreported)
    record("kernel_mod_ablation", table.render())

    with_hook = [r for (_m, hooks, _p, r) in rows if hooks]
    without = [(p, r) for (_m, hooks, p, r) in rows if not hooks]
    assert all(r.corrupted == 0 for r in with_hook)
    # Without the patch, corruption appears under pressure.
    assert sum(r.corrupted for _p, r in without) > 0
    heavy = [r for p, r in without if p >= 0.6]
    assert all(r.corrupted > 0 for r in heavy)


def test_paper_methods_on_stock_kernel(record, benchmark):
    methods = ["keyed", "extshadow", "repeated5"]

    def run():
        out = {}
        for method in methods:
            out[method] = run_stress(
                method, n_processes=4, dmas_each=20, preempt_p=0.6,
                with_hooks=False,
                with_retry=(method == "repeated5"))
        return out

    reports = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table(
        "The paper's methods on an UNMODIFIED kernel (p=0.6)",
        ["method", "attempts", "started", "corrupted", "misreported",
         "data errors"])
    for method in methods:
        r = reports[method]
        table.add_row(method, r.attempts, r.started, r.corrupted,
                      r.misreported, r.data_errors)
    record("paper_methods_stock_kernel", table.render())
    for method in methods:
        assert reports[method].clean, method
