"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper's artifacts (Table 1, the
figure attacks, the §3.4/§3.5 observations) and both prints the resulting
table and writes it under ``benchmarks/results/`` so EXPERIMENTS.md can
reference stable files.  Run with::

    pytest benchmarks/ --benchmark-only

(add ``-s`` to watch the tables scroll by).
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def record_result(name: str, text: str) -> None:
    """Print *text* and persist it as ``benchmarks/results/<name>.txt``."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n")


@pytest.fixture
def record():
    """The result recorder as a fixture."""
    return record_result
