"""Liveness cost of Fig. 7's retry loop under preemption pressure.

The 5-instruction method trades a failed initiation (plus a retry) for
atomicity whenever a preemption lands inside the sequence.  This
benchmark measures that trade: two processes continuously initiate under
a sweep of preemption probabilities, and we report how many recognizer
resets (broken sequences) the engine absorbed per successful initiation.
Even at a brutal 60% per-instruction preemption rate the loop converges
— the cost of kernel-free atomicity is bounded retry work, not
correctness.
"""

from __future__ import annotations

from repro.analysis.report import Table
from repro.core.api import DmaChannel
from repro.core.machine import MachineConfig, Workstation
from repro.os.scheduler import RandomPreemptionPolicy
from repro.sim.rng import make_rng
from repro.verify.stress import _unique_labels

PREEMPT_SWEEP = [0.0, 0.2, 0.4, 0.6]
DMAS_EACH = 10


def run_pressure(preempt_p: float, seed: int = 5) -> dict:
    ws = Workstation(MachineConfig(method="repeated5", seed=seed))
    scheduler = ws.make_scheduler(
        RandomPreemptionPolicy(preempt_p, make_rng(seed, "retry")))
    for index in range(2):
        proc = ws.kernel.spawn(f"p{index}")
        ws.kernel.enable_user_dma(proc)
        src = ws.kernel.alloc_buffer(proc, DMAS_EACH * 64)
        dst = ws.kernel.alloc_buffer(proc, DMAS_EACH * 64)
        chan = DmaChannel(ws, proc)
        instructions = []
        for dma_index in range(DMAS_EACH):
            instructions.extend(_unique_labels(
                chan.sequence(src.vaddr + dma_index * 64,
                              dst.vaddr + dma_index * 64, 64,
                              with_retry=True), dma_index))
        from repro.hw.isa import Halt, assemble

        instructions.append(Halt())
        thread = proc.new_thread(assemble(instructions))
        scheduler.add(proc, thread)
    scheduler.run(max_instructions=5_000_000)
    ws.drain()
    started = len(ws.engine.started_transfers())
    resets = ws.engine.protocol.resets
    return {"started": started, "resets": resets,
            "resets_per_success": resets / max(1, started)}


def test_retry_convergence(record, benchmark):
    def run():
        return {p: run_pressure(p) for p in PREEMPT_SWEEP}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table(
        "Fig. 7 retry loop under preemption (2 procs x "
        f"{DMAS_EACH} DMAs)",
        ["preempt p", "initiations started", "recognizer resets",
         "resets per success"])
    for p in PREEMPT_SWEEP:
        row = results[p]
        table.add_row(p, row["started"], row["resets"],
                      f"{row['resets_per_success']:.2f}")
    record("retry_convergence", table.render())

    # Every workload completed all its DMAs at every pressure.
    for p in PREEMPT_SWEEP:
        assert results[p]["started"] >= 2 * DMAS_EACH
    # Retry work grows with pressure but stays bounded.
    assert (results[0.6]["resets_per_success"]
            >= results[0.0]["resets_per_success"])
    assert results[0.6]["resets_per_success"] < 30
