"""Compare two benchmark JSON reports for CI regression gating.

Usage::

    python benchmarks/compare_bench.py BASELINE.json CANDIDATE.json \
        [--max-regression 0.30]

Two report families are understood, dispatched on content:

**Checker reports** (``scenarios`` list): compares the incremental
checker's orders-per-second for every scenario name present in **both**
reports (the committed baseline is a full run; CI candidates use
``--quick``, which covers a subset).  Exits non-zero when any common
scenario's candidate throughput falls more than ``--max-regression``
(default 30%) below the baseline.  ``--min-speedup`` (default 1.0)
additionally fails the gate when any candidate scenario that reports
both naive and incremental timings has an incremental/naive speedup
below the threshold.

**Table-1 latency reports** (``benchmark == "table1"``, the
``BENCH_table1.json`` schema written by ``bench_table1.py``): compares
per-method simulated initiation latency for every method present in
both reports.  Exits non-zero when any method's candidate latency rises
more than ``--max-regression`` (default 30%) above the baseline, or
when a method with a paper reference value drifts outside 15% of it.
Simulated latencies are deterministic, so this gate only trips on real
cost-model changes.

**Service soak reports** (``benchmark == "service_soak"``, the
``BENCH_service.json`` schema — see ``docs/service.md``): gates on

* aggregate goodput dropping more than ``--max-regression`` below the
  baseline (default 10% for this family),
* p99 completion latency rising more than ``--max-latency-regression``
  (default 10%) above the baseline,
* any wrong-page transfer in the candidate (always fatal),
* a candidate fault-recovery verdict of ``UNSAFE``.

Simulated-time soak metrics are deterministic — the tight 10% margins
are safe because runner noise cannot reach them.

Throughput on shared CI runners is noisy, hence the generous margin on
the wall-clock checker family: that gate exists to catch algorithmic
regressions (an accidental quadratic in the checker), not micro-noise.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Any, Dict, List, Optional

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent
                       / "src"))

from repro.analysis.trends import compare_service_reports  # noqa: E402


def is_service_report(report: Dict[str, Any]) -> bool:
    """Whether *report* is a ``BENCH_service.json`` soak report."""
    return report.get("benchmark") == "service_soak"


def compare_service(baseline: Dict[str, Any], candidate: Dict[str, Any],
                    max_goodput_drop: float,
                    max_p99_increase: float) -> List[str]:
    """Print the soak comparison and return failure lines."""
    rows = [
        ("goodput (MB/s)",
         baseline.get("goodput_mbytes_per_s"),
         candidate.get("goodput_mbytes_per_s")),
        ("p99 latency (us)",
         (baseline.get("latency_us") or {}).get("p99"),
         (candidate.get("latency_us") or {}).get("p99")),
        ("completed",
         (baseline.get("requests") or {}).get("completed"),
         (candidate.get("requests") or {}).get("completed")),
        ("wrong-page transfers",
         (baseline.get("requests") or {}).get("wrong_transfers"),
         (candidate.get("requests") or {}).get("wrong_transfers")),
        ("verdict",
         (baseline.get("faults") or {}).get("verdict"),
         (candidate.get("faults") or {}).get("verdict")),
    ]
    for name, base, cand in rows:
        print(f"  {name:24s} base {base!s:>12s}  cand {cand!s:>12s}")
    return compare_service_reports(baseline, candidate,
                                   max_goodput_drop=max_goodput_drop,
                                   max_p99_increase=max_p99_increase)


def is_table1_report(report: Dict[str, Any]) -> bool:
    """Whether *report* is a ``BENCH_table1.json`` latency report."""
    return report.get("benchmark") == "table1"


def compare_table1(baseline: Dict[str, Any], candidate: Dict[str, Any],
                   max_regression: float) -> List[str]:
    """Per-method latency comparison; failure lines when the gate trips."""
    failures: List[str] = []
    base_rows = baseline.get("rows", {})
    cand_rows = candidate.get("rows", {})
    common = sorted(set(base_rows) & set(cand_rows))
    if not common:
        return ["no common methods between baseline and candidate"]
    for method in common:
        base = base_rows[method].get("simulated_us")
        cand = cand_rows[method].get("simulated_us")
        if not base or cand is None:
            continue
        change = (cand - base) / base
        status = "OK"
        if change > max_regression:
            status = "REGRESSION"
            failures.append(
                f"{method}: {cand:.2f} us is {change * 100:.1f}% above "
                f"baseline {base:.2f} us")
        paper = cand_rows[method].get("paper_us")
        if paper and abs(cand - paper) / paper > 0.15:
            status = "PAPER-DRIFT"
            failures.append(
                f"{method}: {cand:.2f} us drifted outside 15% of the "
                f"paper's {paper:.2f} us")
        print(f"  {method:20s} base {base:>8.2f} us  cand {cand:>8.2f} us  "
              f"{change * 100:+6.1f}%  {status}")
    return failures


def load_rates(path: pathlib.Path) -> Dict[str, float]:
    """Scenario name -> incremental orders/s (naive as fallback)."""
    report = json.loads(path.read_text())
    rates: Dict[str, float] = {}
    for entry in report.get("scenarios", []):
        timing = entry.get("incremental") or entry.get("naive") or {}
        rate = timing.get("orders_per_s")
        if rate:
            rates[entry["name"]] = float(rate)
    return rates


def check_speedups(path: pathlib.Path, min_speedup: float) -> List[str]:
    """Failure lines for candidate scenarios slower than the naive oracle.

    Only entries carrying both a "naive" and an "incremental" timing are
    gated (oracle-only and synthesis reports have neither).
    """
    report = json.loads(path.read_text())
    failures: List[str] = []
    for entry in report.get("scenarios", []):
        if "naive" not in entry or "incremental" not in entry:
            continue
        speedup = entry.get("speedup")
        if speedup is not None and speedup < min_speedup:
            failures.append(
                f"{entry['name']}: incremental speedup {speedup}x is "
                f"below the {min_speedup}x floor")
    return failures


def compare(baseline: Dict[str, float], candidate: Dict[str, float],
            max_regression: float) -> List[str]:
    """Human-readable failure lines (empty when the gate passes)."""
    failures: List[str] = []
    common = sorted(set(baseline) & set(candidate))
    if not common:
        return ["no common scenarios between baseline and candidate"]
    for name in common:
        base, cand = baseline[name], candidate[name]
        change = (cand - base) / base
        status = "OK"
        if change < -max_regression:
            status = "REGRESSION"
            failures.append(
                f"{name}: {cand:.1f} orders/s is "
                f"{-change * 100:.1f}% below baseline {base:.1f}")
        print(f"  {name:40s} base {base:>12.1f}  cand {cand:>12.1f}  "
              f"{change * +100:+6.1f}%  {status}")
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Gate CI on checker-benchmark throughput.")
    parser.add_argument("baseline", type=pathlib.Path,
                        help="committed reference report (full run)")
    parser.add_argument("candidate", type=pathlib.Path,
                        help="freshly generated report (usually --quick)")
    parser.add_argument("--max-regression", type=float, default=None,
                        help="allowed fractional slowdown (default 0.30 "
                             "for checker reports, 0.10 for service soak "
                             "reports)")
    parser.add_argument("--min-speedup", type=float, default=1.0,
                        help="minimum incremental/naive speedup required "
                             "of every candidate scenario (default 1.0)")
    parser.add_argument("--max-latency-regression", type=float,
                        default=0.10,
                        help="allowed fractional p99 latency increase "
                             "for service soak reports (default 0.10)")
    args = parser.parse_args(argv)
    if args.min_speedup < 0:
        parser.error("--min-speedup must be non-negative")
    if not 0 < args.max_latency_regression < 10:
        parser.error("--max-latency-regression must be in (0, 10)")

    base_report = json.loads(args.baseline.read_text())
    cand_report = json.loads(args.candidate.read_text())
    if is_table1_report(base_report) or is_table1_report(cand_report):
        if not (is_table1_report(base_report)
                and is_table1_report(cand_report)):
            print("FAIL:\n  cannot compare a table1 latency report "
                  "against a different report family")
            return 1
        max_regression = (args.max_regression
                          if args.max_regression is not None else 0.30)
        if not 0 < max_regression < 1:
            parser.error("--max-regression must be in (0, 1)")
        print(f"comparing table1 latency reports (allowing "
              f"{max_regression * 100:.0f}% latency rise)")
        failures = compare_table1(base_report, cand_report, max_regression)
        if failures:
            print("FAIL:")
            for line in failures:
                print(f"  {line}")
            return 1
        print("table1 latency gate passed")
        return 0
    if is_service_report(base_report) or is_service_report(cand_report):
        if not (is_service_report(base_report)
                and is_service_report(cand_report)):
            print("FAIL:\n  cannot compare a service soak report against "
                  "a checker report")
            return 1
        # Soak metrics are deterministic, so the default margin tightens.
        max_drop = (args.max_regression
                    if args.max_regression is not None else 0.10)
        if not 0 < max_drop < 1:
            parser.error("--max-regression must be in (0, 1)")
        print(f"comparing service soak reports (allowing "
              f"{max_drop * 100:.0f}% goodput drop, "
              f"{args.max_latency_regression * 100:.0f}% p99 rise)")
        failures = compare_service(
            base_report, cand_report, max_goodput_drop=max_drop,
            max_p99_increase=args.max_latency_regression)
        if failures:
            print("FAIL:")
            for line in failures:
                print(f"  {line}")
            return 1
        print("service benchmark gate passed")
        return 0

    max_regression = (args.max_regression
                      if args.max_regression is not None else 0.30)
    if not 0 < max_regression < 1:
        parser.error("--max-regression must be in (0, 1)")
    args.max_regression = max_regression

    baseline = load_rates(args.baseline)
    candidate = load_rates(args.candidate)
    print(f"comparing {len(set(baseline) & set(candidate))} common "
          f"scenarios (allowing {args.max_regression * 100:.0f}% slowdown)")
    failures = compare(baseline, candidate, args.max_regression)
    failures.extend(check_speedups(args.candidate, args.min_speedup))
    if failures:
        print("FAIL:")
        for line in failures:
            print(f"  {line}")
        return 1
    print("benchmark gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
