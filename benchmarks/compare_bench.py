"""Compare two checker-benchmark JSON reports for CI regression gating.

Usage::

    python benchmarks/compare_bench.py BASELINE.json CANDIDATE.json \
        [--max-regression 0.30]

Compares the incremental checker's orders-per-second for every scenario
name present in **both** reports (the committed baseline is a full run;
CI candidates use ``--quick``, which covers a subset).  Exits non-zero
when any common scenario's candidate throughput falls more than
``--max-regression`` (default 30%) below the baseline.

Throughput on shared CI runners is noisy, hence the generous margin:
the gate exists to catch algorithmic regressions (an accidental
quadratic in the checker), not micro-noise.

``--min-speedup`` (default 1.0) additionally fails the gate when any
candidate scenario that reports both naive and incremental timings has
an incremental/naive speedup below the threshold — the incremental
checker must never be slower than the naive oracle it replaces.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Dict, List, Optional


def load_rates(path: pathlib.Path) -> Dict[str, float]:
    """Scenario name -> incremental orders/s (naive as fallback)."""
    report = json.loads(path.read_text())
    rates: Dict[str, float] = {}
    for entry in report.get("scenarios", []):
        timing = entry.get("incremental") or entry.get("naive") or {}
        rate = timing.get("orders_per_s")
        if rate:
            rates[entry["name"]] = float(rate)
    return rates


def check_speedups(path: pathlib.Path, min_speedup: float) -> List[str]:
    """Failure lines for candidate scenarios slower than the naive oracle.

    Only entries carrying both a "naive" and an "incremental" timing are
    gated (oracle-only and synthesis reports have neither).
    """
    report = json.loads(path.read_text())
    failures: List[str] = []
    for entry in report.get("scenarios", []):
        if "naive" not in entry or "incremental" not in entry:
            continue
        speedup = entry.get("speedup")
        if speedup is not None and speedup < min_speedup:
            failures.append(
                f"{entry['name']}: incremental speedup {speedup}x is "
                f"below the {min_speedup}x floor")
    return failures


def compare(baseline: Dict[str, float], candidate: Dict[str, float],
            max_regression: float) -> List[str]:
    """Human-readable failure lines (empty when the gate passes)."""
    failures: List[str] = []
    common = sorted(set(baseline) & set(candidate))
    if not common:
        return ["no common scenarios between baseline and candidate"]
    for name in common:
        base, cand = baseline[name], candidate[name]
        change = (cand - base) / base
        status = "OK"
        if change < -max_regression:
            status = "REGRESSION"
            failures.append(
                f"{name}: {cand:.1f} orders/s is "
                f"{-change * 100:.1f}% below baseline {base:.1f}")
        print(f"  {name:40s} base {base:>12.1f}  cand {cand:>12.1f}  "
              f"{change * +100:+6.1f}%  {status}")
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Gate CI on checker-benchmark throughput.")
    parser.add_argument("baseline", type=pathlib.Path,
                        help="committed reference report (full run)")
    parser.add_argument("candidate", type=pathlib.Path,
                        help="freshly generated report (usually --quick)")
    parser.add_argument("--max-regression", type=float, default=0.30,
                        help="allowed fractional slowdown (default 0.30)")
    parser.add_argument("--min-speedup", type=float, default=1.0,
                        help="minimum incremental/naive speedup required "
                             "of every candidate scenario (default 1.0)")
    args = parser.parse_args(argv)
    if not 0 < args.max_regression < 1:
        parser.error("--max-regression must be in (0, 1)")
    if args.min_speedup < 0:
        parser.error("--min-speedup must be non-negative")

    baseline = load_rates(args.baseline)
    candidate = load_rates(args.candidate)
    print(f"comparing {len(set(baseline) & set(candidate))} common "
          f"scenarios (allowing {args.max_regression * 100:.0f}% slowdown)")
    failures = compare(baseline, candidate, args.max_regression)
    failures.extend(check_speedups(args.candidate, args.min_speedup))
    if failures:
        print("FAIL:")
        for line in failures:
            print(f"  {line}")
        return 1
    print("benchmark gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
