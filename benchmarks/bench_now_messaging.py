"""End-to-end NOW messaging — kernel vs. user-level initiation.

The system-level payoff of the whole paper: one-way message time between
two workstations across message sizes, under kernel-level and user-level
(extended shadow) initiation, on the link generations the paper names.
Small messages improve by the full initiation gap; large ones converge as
wire time dominates.
"""

from __future__ import annotations

from repro.analysis.report import Table, format_us
from repro.core.api import DmaChannel
from repro.core.machine import MachineConfig
from repro.net import ATM_155, GIGABIT, Cluster
from repro.units import to_us

SIZES = [64, 512, 4096, 32768]


def one_way_time(method: str, link, size: int) -> float:
    cluster = Cluster(2, link_spec=link,
                      config=MachineConfig(method=method,
                                           ram_size=1 << 24))
    sender_ws, receiver_ws = cluster.node(0), cluster.node(1)
    sender = sender_ws.kernel.spawn()
    if method != "kernel":
        sender_ws.kernel.enable_user_dma(sender)
    src = sender_ws.kernel.alloc_buffer(sender, max(size, 8192))
    receiver = receiver_ws.kernel.spawn()
    dst = receiver_ws.kernel.alloc_buffer(receiver, max(size, 8192),
                                          shadow=False)
    window = sender_ws.kernel.map_remote_window(
        sender, receiver_ws.nic.global_address(dst.paddr),
        max(size, 8192))
    chan = DmaChannel(sender_ws, sender)
    chan.initiate(src.vaddr, window, 64)  # warm-up
    cluster.run_until_quiet()
    start = cluster.sim.now
    result = chan.initiate(src.vaddr, window, size)
    assert result.ok
    cluster.run_until_quiet()
    return to_us(cluster.sim.now - start)


def test_now_message_latency(record, benchmark):
    def run():
        out = {}
        for link in (ATM_155, GIGABIT):
            for method in ("kernel", "extshadow"):
                for size in SIZES:
                    out[(link.name, method, size)] = one_way_time(
                        method, link, size)
        return out

    measured = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table("One-way NOW message time (us)",
                  ["link", "method"] + [f"{s} B" for s in SIZES])
    for link in (ATM_155, GIGABIT):
        for method in ("kernel", "extshadow"):
            table.add_row(link.name, method,
                          *(format_us(measured[(link.name, method, s)],
                                      1) for s in SIZES))
    speedups = {
        (link.name, s): (measured[(link.name, "kernel", s)]
                         / measured[(link.name, "extshadow", s)])
        for link in (ATM_155, GIGABIT) for s in SIZES}
    table.add_row("speedup", "gigabit/64B",
                  f"{speedups[('gigabit', 64)]:.2f}x", "", "", "")
    record("now_messaging", table.render())

    # Small messages on the fast link gain the most.
    assert speedups[("gigabit", 64)] > speedups[("gigabit", 32768)]
    assert speedups[("gigabit", 64)] > 1.8
    # Large transfers converge: wire time dominates.
    assert speedups[("atm-155", 32768)] < 1.05
