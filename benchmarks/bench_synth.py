"""Counterexample-synthesis benchmark: hunt, shrink, k-fault throughput.

Measures the three phases of the synthesis subsystem
(:mod:`repro.verify.synth`) and writes one JSON report:

* **hunt** — guided-search throughput against the *hardened* methods.
  Hardened hunts always exhaust their candidate budget, so the work per
  cell is deterministic and the rate (interleavings model-checked per
  wall second) is stable enough to gate in CI.
* **rediscover** — candidates-to-find for the broken variants
  (repeated3/repeated4).  Informational only: the runs stop at the
  first violation, so wall time is too small to gate on.
* **shrink** — delta-debugging throughput on the paper's printed
  Fig. 5 / Fig. 6 interleavings, in replays per second.
* **kfault** — exhaustive k=2 campaign throughput on shrimp1.

The report follows the ``compare_bench.py`` contract — gated cells
carry ``{"incremental": {"orders_per_s": ...}}`` keyed by scenario
name; informational cells omit it — so the CI gate is::

    python benchmarks/compare_bench.py \
        benchmarks/results/BENCH_synth.json CANDIDATE.json

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_synth.py           # full
    PYTHONPATH=src python benchmarks/bench_synth.py --quick   # CI smoke
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time
from typing import List, Optional

if __package__ in (None, ""):  # `python benchmarks/bench_synth.py`
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent
                           / "src"))

from repro.verify.adversary import fig5_scenario, fig6_scenario
from repro.verify.synth import (
    HuntConfig,
    hunt_method,
    shrink_counterexample,
    verify_method_under_k_faults,
)

DEFAULT_OUTPUT = (pathlib.Path(__file__).resolve().parent
                  / "results" / "BENCH_synth.json")

HARDENED = ("shrimp1", "keyed", "extshadow", "repeated5")
BROKEN = ("repeated3", "repeated4")
QUICK_HARDENED = ("shrimp1", "extshadow")

FIGURES = {"fig5": fig5_scenario, "fig6": fig6_scenario}


def bench_hunt(method: str, candidates: int, seed: int) -> dict:
    """Hardened-method hunt: fixed budget, rate over checker work."""
    config = HuntConfig(seed=seed, max_candidates=candidates)
    t0 = time.perf_counter()
    report = hunt_method(method, config)
    wall = time.perf_counter() - t0
    rate = report.interleavings / wall if wall else 0.0
    return {
        "name": f"hunt-{method}",
        "kind": "hunt",
        "found": report.found,
        "candidates": report.candidates,
        "interleavings": report.interleavings,
        "accesses_delivered": report.accesses_delivered,
        "incremental": {
            "wall_s": round(wall, 6),
            "orders_per_s": round(rate, 1),
            "candidates_per_s": round(report.candidates / wall, 1)
            if wall else 0.0,
        },
    }


def bench_rediscovery(method: str, candidates: int, seed: int) -> dict:
    """Broken-variant rediscovery: informational, no gating rate."""
    config = HuntConfig(seed=seed, max_candidates=candidates)
    t0 = time.perf_counter()
    report = hunt_method(method, config)
    wall = time.perf_counter() - t0
    return {
        "name": f"rediscover-{method}",
        "kind": "rediscovery",
        "found": report.found,
        "candidates_to_find": report.candidates,
        "violated_props": list(report.props),
        "shrunk_length": len(report.shrunk) if report.shrunk else None,
        "wall_s": round(wall, 6),
    }


def bench_shrink(figure: str, reps: int) -> dict:
    """Shrink the printed figure interleaving `reps` times; rate is
    oracle replays per second (the shrinker's unit of work)."""
    scenario, printed = FIGURES[figure]()
    replays = 0
    t0 = time.perf_counter()
    for _ in range(reps):
        core = shrink_counterexample(scenario, printed)
        replays += core.replays
    wall = time.perf_counter() - t0
    return {
        "name": f"shrink-{figure}",
        "kind": "shrink",
        "reps": reps,
        "core_length": len(core),
        "replays": replays,
        "incremental": {
            "wall_s": round(wall, 6),
            "orders_per_s": round(replays / wall, 1) if wall else 0.0,
        },
    }


def bench_kfault(method: str, max_combos: Optional[int],
                 seed: int) -> dict:
    """Exhaustive (or capped) k=2 campaign; rate is interleavings/s."""
    t0 = time.perf_counter()
    report = verify_method_under_k_faults(method, k=2,
                                          max_combos=max_combos,
                                          seed=seed)
    wall = time.perf_counter() - t0
    rate = report.interleavings_checked / wall if wall else 0.0
    return {
        "name": f"kfault-{method}-k2",
        "kind": "kfault",
        "verdict": report.verdict,
        "sampled": report.sampled,
        "combos_checked": report.combos_checked,
        "interleavings": report.interleavings_checked,
        "incremental": {
            "wall_s": round(wall, 6),
            "orders_per_s": round(rate, 1),
        },
    }


def build_report(quick: bool = False, seed: int = 7) -> dict:
    """Run every cell and return the JSON-ready report dict."""
    hardened = QUICK_HARDENED if quick else HARDENED
    hunt_budget = 60 if quick else 300
    shrink_reps = 3 if quick else 20
    kfault_cap = 60 if quick else None

    scenarios: List[dict] = []
    scenarios += [bench_hunt(m, hunt_budget, seed) for m in hardened]
    scenarios += [bench_rediscovery(m, hunt_budget, seed)
                  for m in BROKEN]
    scenarios += [bench_shrink(fig, shrink_reps) for fig in FIGURES]
    scenarios.append(bench_kfault("shrimp1", kfault_cap, seed))

    rediscovered = all(c["found"] for c in scenarios
                       if c["kind"] == "rediscovery")
    survived = not any(c["found"] for c in scenarios
                       if c["kind"] == "hunt")
    return {
        "benchmark": "counterexample_synthesis",
        "generated_by": "benchmarks/bench_synth.py",
        "quick": quick,
        "python": sys.version.split()[0],
        "seed": seed,
        "hunt_budget": hunt_budget,
        "scenarios": scenarios,
        "rediscovered": rediscovered,
        "hardened_survived": survived,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark counterexample synthesis; emit JSON.")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: fewer methods, smaller budgets")
    parser.add_argument("--seed", type=int, default=7,
                        help="hunt and k-fault sampling seed")
    parser.add_argument("--output", type=pathlib.Path,
                        default=DEFAULT_OUTPUT,
                        help=f"output path (default {DEFAULT_OUTPUT})")
    args = parser.parse_args(argv)

    report = build_report(quick=args.quick, seed=args.seed)
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(report, indent=2) + "\n")

    for cell in report["scenarios"]:
        timing = cell.get("incremental")
        rate = (f"{timing['orders_per_s']:>12.1f} orders/s"
                if timing else "  informational")
        extra = ""
        if cell["kind"] == "rediscovery":
            extra = (f" found after {cell['candidates_to_find']} "
                     f"candidates" if cell["found"] else " NOT FOUND")
        elif cell["kind"] == "kfault":
            extra = f" verdict {cell['verdict']}"
        print(f"{cell['name']:24s} {rate}{extra}")
    print(f"broken variants rediscovered: {report['rediscovered']}")
    print(f"hardened methods survived:    {report['hardened_survived']}")
    print(f"wrote {args.output}")
    ok = report["rediscovered"] and report["hardened_survived"]
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
