"""Ablation — how many register contexts are enough? (§3.1, §3.2)

The paper sizes its engine at "say 4 to 8" register contexts and argues
1-2 CONTEXT_ID bits suffice "for most practical cases", with overflow
processes falling back to the kernel path.  This ablation sweeps the
context count against a population of DMA-hungry processes and reports
the population-weighted mean initiation cost: the price of
under-provisioning contexts is the weighted pull toward 18.6 µs.
"""

from __future__ import annotations

from repro.analysis.report import Table, format_us
from repro.core.api import open_channel
from repro.core.machine import MachineConfig, Workstation
from repro.units import to_us

N_PROCESSES = 8
DMAS_EACH = 4


def weighted_mean_us(n_contexts: int) -> dict:
    ws = Workstation(MachineConfig(method="keyed",
                                   n_contexts=n_contexts))
    total = 0
    user_served = 0
    for index in range(N_PROCESSES):
        proc = ws.kernel.spawn(f"p{index}")
        chan = open_channel(ws, proc)
        shadow = chan.via == "user"
        if shadow:
            user_served += 1
        src = ws.kernel.alloc_buffer(proc, 8192, shadow=shadow)
        dst = ws.kernel.alloc_buffer(proc, 8192, shadow=shadow)
        chan.initiate(src.vaddr, dst.vaddr, 64)  # warm
        ws.drain()
        for dma_index in range(DMAS_EACH):
            offset = dma_index * 64
            result = chan.initiate(src.vaddr + offset,
                                   dst.vaddr + offset, 64)
            assert result.ok
            total += result.elapsed
            ws.drain()
    return {
        "mean_us": to_us(total) / (N_PROCESSES * DMAS_EACH),
        "user_served": user_served,
    }


def test_context_count_ablation(record, benchmark):
    counts = [1, 2, 4, 8]

    def run():
        return {n: weighted_mean_us(n) for n in counts}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table(
        f"Context-count ablation: {N_PROCESSES} DMA-active processes",
        ["contexts", "user-level served", "kernel fallbacks",
         "mean initiation (us)"])
    for n in counts:
        row = results[n]
        table.add_row(n, row["user_served"],
                      N_PROCESSES - row["user_served"],
                      format_us(row["mean_us"], 2))
    record("context_count", table.render())

    # More contexts -> cheaper population-wide initiation...
    means = [results[n]["mean_us"] for n in counts]
    assert means == sorted(means, reverse=True)
    # ...with everyone served at 8 contexts (the paper's upper bound):
    assert results[8]["user_served"] == N_PROCESSES
    assert results[8]["mean_us"] < 3.0
    # ...and the paper's "4 to 8" range pays off: 4 contexts already
    # cut the population mean by >1.5x vs a single context, and full
    # provisioning (8) is ~7x cheaper than 1.
    assert results[1]["mean_us"] > 1.5 * results[4]["mean_us"]
    assert results[1]["mean_us"] > 6 * results[8]["mean_us"]
